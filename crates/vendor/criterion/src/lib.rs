//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock harness: per sample, a calibrated batch of iterations is
//! timed with `Instant`, and the mean / median / fastest-sample statistics
//! are printed. No plots, no statistical regression machinery; the numbers
//! are honest medians good enough for A/B comparisons within one run.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value laundering (re-export of the std hint).
pub use std::hint::black_box;

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Number of timed samples.
    sample_size: usize,
    /// Target wall-clock budget for the whole measurement phase.
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(1500),
        }
    }
}

/// The harness entry point (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.settings, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }
}

/// A named group of benchmarks (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Set the measurement-phase wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<N: Display, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.settings, f);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.settings, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier `function_name/parameter` (stand-in for
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a displayed parameter.
    pub fn new<N: Into<String>, P: Display>(function_name: N, parameter: P) -> Self {
        Self {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Create an id from a displayed parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    settings: Settings,
    /// (total elapsed, iterations) per sample.
    samples: Vec<(Duration, u64)>,
    ran: bool,
}

impl Bencher {
    /// Time `routine`, calling it in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.ran = true;
        // Calibration: find how many iterations fit one sample slot.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.settings.measurement_time / self.settings.sample_size as u32;
        let iters_per_sample = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters_per_sample));
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, mut f: F) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
        ran: false,
    };
    f(&mut bencher);
    if !bencher.ran || bencher.samples.is_empty() {
        println!("{name:<58} (no measurement)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, n)| d.as_secs_f64() / *n as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let best = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<58} time: [{} {} {}]",
        format_time(best),
        format_time(median),
        format_time(mean)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Group benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(2u64 + 2)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("louvain", 600).to_string(), "louvain/600");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
