//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest 1.x API the workspace uses: the [`proptest!`]
//! macro (including `#![proptest_config(...)]`), [`Strategy`] with
//! `prop_map`, range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! case index; re-running reproduces it deterministically, because case `i`
//! always uses the same RNG stream), and strategies are plain value
//! generators rather than value trees.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic RNG for a test case index.
pub fn test_rng(case: u32) -> TestRng {
    StdRng::seed_from_u64(
        0x9E37_79B9_7F4A_7C15 ^ u64::from(case).wrapping_mul(0xD134_2543_DE82_EF95),
    )
}

/// Per-`proptest!` configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Blanket impl so `&strategy` is itself a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// The `prop` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Define deterministic random-input property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop(x in 0u32..100, v in prop::collection::vec(0i64..10, 1..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) } => {};
    {
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    } => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_rng(case);
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                )+
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case}/{} of `{}` failed (deterministic; re-run reproduces it)",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_rng(0);
        let s = (0u32..10, -5i64..5, 0.0f64..1.0);
        for _ in 0..100 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_rng(1);
        let s = prop::collection::vec(0u8..3, 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_rng(2);
        let s = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = prop::collection::vec(0u64..1000, 5..20);
        let a = s.generate(&mut crate::test_rng(7));
        let b = s.generate(&mut crate::test_rng(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_smoke(x in 0u32..100, pair in (0i64..10, 0i64..10)) {
            prop_assert!(x < 100);
            prop_assert_ne!(pair.0 - 11, pair.1);
            prop_assert_eq!(pair.0.min(pair.1).min(0), 0);
        }
    }
}
