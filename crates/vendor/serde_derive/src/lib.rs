//! No-op `Serialize` / `Deserialize` derives for the vendored serde
//! stand-in. Each derive emits an empty marker-trait impl for the deriving
//! type. Written against `proc_macro` directly (no syn/quote — the build
//! environment is offline), so only the type name and generic parameter
//! *identifiers* are parsed; that covers every derived type in this
//! workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extract `(name, generic_idents)` from a struct/enum definition.
fn type_header(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/qualifiers until the
    // `struct` / `enum` keyword.
    for tt in tokens.by_ref() {
        match &tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    // Collect generic parameter identifiers from `<...>` if present, e.g.
    // `<T, U: Bound, 'a>` -> ["T", "U", "'a"]. Only top-level params are
    // taken (depth 1), skipping bounds after `:` and defaults after `=`.
    let mut generics: Vec<String> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut take_next = true;
            let mut lifetime = false;
            for tt in tokens {
                match &tt {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => take_next = true,
                        '\'' if depth == 1 && take_next => lifetime = true,
                        ':' | '=' if depth == 1 => take_next = false,
                        _ => {}
                    },
                    TokenTree::Ident(id) if depth == 1 && take_next => {
                        if lifetime {
                            generics.push(format!("'{id}"));
                            lifetime = false;
                        } else if id.to_string() == "const" {
                            continue; // const generics: take the next ident
                        } else {
                            generics.push(id.to_string());
                        }
                        take_next = false;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::None => {}
                    _ => {}
                }
            }
        }
    }
    (name, generics)
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let (name, generics) = type_header(input);
    let code = if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        format!("impl<{params}> ::serde::{trait_name} for {name}<{params}> {{}}")
    };
    code.parse().expect("generated impl parses")
}

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
