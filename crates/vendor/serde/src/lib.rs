//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io. The workspace only
//! uses serde as derive markers on plain data types (no `serde_json`, no
//! `#[serde(...)]` attributes, no trait bounds), so this crate provides
//! empty marker traits plus no-op derive macros with the same names. If a
//! future PR needs real (de)serialization, replace this vendored crate with
//! the upstream dependency and everything keeps compiling.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching the name of `serde::Serialize`.
pub trait Serialize {}

/// Marker trait matching the name of `serde::Deserialize`.
pub trait Deserialize {}
