//! Text exports of graphs: DOT, CSV edge lists and GeoJSON.
//!
//! The paper presents its results as map figures (Figs. 1–4, 6). We cannot
//! render raster maps here, but the GeoJSON export reproduces the underlying
//! artefacts: node features carry the community/colour assignments and edge
//! features carry the trip weights, so any GIS viewer reproduces the figure.

use crate::{CsrGraph, NodeId, WeightedGraph};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the graph in Graphviz DOT format.
///
/// `node_label` supplies the display label for each node id (fall back to
/// the numeric id by returning `None`). Edge weights become `penwidth`-style
/// weight attributes.
pub fn to_dot<F>(graph: &WeightedGraph, name: &str, node_label: F) -> String
where
    F: Fn(NodeId) -> Option<String>,
{
    let mut out = String::new();
    let kind = if graph.is_directed() {
        "digraph"
    } else {
        "graph"
    };
    let arrow = if graph.is_directed() { "->" } else { "--" };
    let _ = writeln!(out, "{kind} \"{}\" {{", json_escape(name));
    let mut ids: Vec<NodeId> = graph.node_ids().to_vec();
    ids.sort_unstable();
    for id in &ids {
        let label = node_label(*id).unwrap_or_else(|| id.to_string());
        let _ = writeln!(out, "  n{id} [label=\"{}\"];", json_escape(&label));
    }
    let mut edges = graph.edges();
    edges.sort_by_key(|a| (a.0, a.1));
    for (src, dst, w) in edges {
        let _ = writeln!(out, "  n{src} {arrow} n{dst} [weight={w}];");
    }
    out.push_str("}\n");
    out
}

/// Render the graph as a CSV edge list with header `src,dst,weight`.
pub fn to_edge_csv(graph: &WeightedGraph) -> String {
    let mut out = String::from("src,dst,weight\n");
    let mut edges = graph.edges();
    edges.sort_by_key(|a| (a.0, a.1));
    for (src, dst, w) in edges {
        let _ = writeln!(out, "{src},{dst},{w}");
    }
    out
}

/// Per-node attributes attached to GeoJSON point features.
#[derive(Debug, Clone, Default)]
pub struct NodeFeature {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Display name.
    pub name: String,
    /// Community assignment, if any.
    pub community: Option<usize>,
    /// Whether this is a pre-existing (fixed) station as opposed to a newly
    /// selected one.
    pub is_fixed: bool,
}

/// Render a GeoJSON `FeatureCollection` with one point feature per node and
/// one line feature per edge (weight in properties).
///
/// Nodes missing from `features` are skipped (as are their edges); this is
/// how the export naturally restricts a figure to the stations it shows.
/// `min_edge_weight` drops light edges — Fig. 2 only draws the top percentile
/// of edge weights, which callers implement by passing the percentile value.
pub fn to_geojson(
    graph: &CsrGraph,
    features: &HashMap<NodeId, NodeFeature>,
    min_edge_weight: f64,
) -> String {
    let mut parts: Vec<String> = Vec::new();

    let mut ids: Vec<NodeId> = graph
        .node_ids()
        .iter()
        .copied()
        .filter(|id| features.contains_key(id))
        .collect();
    ids.sort_unstable();

    for id in &ids {
        let f = &features[id];
        let community = f
            .community
            .map(|c| c.to_string())
            .unwrap_or_else(|| "null".to_string());
        let self_loops = graph
            .index_of(*id)
            .map(|u| graph.self_loop(u as usize))
            .unwrap_or(0.0);
        parts.push(format!(
            concat!(
                "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"Point\",",
                "\"coordinates\":[{lon},{lat}]}},\"properties\":{{",
                "\"id\":{id},\"name\":\"{name}\",\"community\":{community},",
                "\"fixed\":{fixed},\"self_trips\":{selfw}}}}}"
            ),
            lon = f.lon,
            lat = f.lat,
            id = id,
            name = json_escape(&f.name),
            community = community,
            fixed = f.is_fixed,
            selfw = self_loops,
        ));
    }

    let mut edges: Vec<(NodeId, NodeId, f64)> = graph.edges().collect();
    edges.sort_by_key(|a| (a.0, a.1));
    for (src, dst, w) in edges {
        if w < min_edge_weight || src == dst {
            continue;
        }
        let (Some(fs), Some(fd)) = (features.get(&src), features.get(&dst)) else {
            continue;
        };
        parts.push(format!(
            concat!(
                "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"LineString\",",
                "\"coordinates\":[[{lon1},{lat1}],[{lon2},{lat2}]]}},",
                "\"properties\":{{\"src\":{src},\"dst\":{dst},\"weight\":{w}}}}}"
            ),
            lon1 = fs.lon,
            lat1 = fs.lat,
            lon2 = fd.lon,
            lat2 = fd.lat,
            src = src,
            dst = dst,
            w = w,
        ));
    }

    format!(
        "{{\"type\":\"FeatureCollection\",\"features\":[{}]}}",
        parts.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(1, 1, 2.0);
        g
    }

    #[test]
    fn dot_undirected_uses_double_dash() {
        let dot = to_dot(&sample(), "test", |_| None);
        assert!(dot.starts_with("graph \"test\" {"));
        assert!(dot.contains("n1 -- n2 [weight=3];"));
        assert!(dot.contains("n1 [label=\"1\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_directed_uses_arrow() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        let dot = to_dot(&g, "d", |id| Some(format!("S{id}")));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("label=\"S1\""));
    }

    #[test]
    fn dot_escapes_labels() {
        let mut g = WeightedGraph::new_undirected();
        g.add_node(1);
        let dot = to_dot(&g, "x", |_| Some("a\"b".to_string()));
        assert!(dot.contains("a\\\"b"));
    }

    #[test]
    fn edge_csv_has_header_and_rows() {
        let csv = to_edge_csv(&sample());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "src,dst,weight");
        assert_eq!(lines.len(), 4); // header + 3 edges
        assert!(lines.contains(&"1,2,3"));
        assert!(lines.contains(&"1,1,2"));
    }

    #[test]
    fn geojson_contains_points_and_lines() {
        let g = sample().freeze();
        let mut feats = HashMap::new();
        for (id, lat, lon) in [(1u64, 53.35, -6.26), (2, 53.36, -6.25), (3, 53.34, -6.24)] {
            feats.insert(
                id,
                NodeFeature {
                    lat,
                    lon,
                    name: format!("S{id}"),
                    community: Some(id as usize % 2),
                    is_fixed: id == 1,
                },
            );
        }
        let gj = to_geojson(&g, &feats, 0.0);
        assert!(gj.starts_with("{\"type\":\"FeatureCollection\""));
        assert!(gj.contains("\"Point\""));
        assert!(gj.contains("\"LineString\""));
        assert!(gj.contains("\"self_trips\":2"));
        assert!(gj.contains("\"fixed\":true"));
        // Self-loop must not appear as a LineString.
        assert!(!gj.contains("[[-6.26,53.35],[-6.26,53.35]]"));
    }

    #[test]
    fn geojson_edge_weight_filter() {
        let g = sample().freeze();
        let mut feats = HashMap::new();
        for (id, lat, lon) in [(1u64, 53.35, -6.26), (2, 53.36, -6.25), (3, 53.34, -6.24)] {
            feats.insert(
                id,
                NodeFeature {
                    lat,
                    lon,
                    name: String::new(),
                    community: None,
                    is_fixed: false,
                },
            );
        }
        let gj = to_geojson(&g, &feats, 2.0);
        // Only the weight-3 edge survives.
        assert!(gj.contains("\"weight\":3"));
        assert!(!gj.contains("\"weight\":1"));
        assert!(gj.contains("\"community\":null"));
    }

    #[test]
    fn geojson_skips_nodes_without_features() {
        let g = sample().freeze();
        let mut feats = HashMap::new();
        feats.insert(
            1u64,
            NodeFeature {
                lat: 53.35,
                lon: -6.26,
                name: "only".into(),
                community: None,
                is_fixed: true,
            },
        );
        let gj = to_geojson(&g, &feats, 0.0);
        assert!(gj.contains("\"id\":1"));
        assert!(!gj.contains("\"id\":2"));
        assert!(!gj.contains("LineString"));
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }
}
