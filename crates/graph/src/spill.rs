//! Out-of-core spill runs for the sharded CSR construction path.
//!
//! When a build's estimated scatter footprint exceeds a configured memory
//! budget ([`CsrBuilder::spill_budget`](crate::CsrBuilder::spill_budget) /
//! the [`BUDGET_ENV`] environment variable), the half-edge columns are
//! **partitioned to per-shard spill files** during the counting pass
//! instead of being materialised in memory: each shard's run holds exactly
//! the half-edges whose row falls in that shard's range, written in
//! **global insertion order**, as plain little-endian columnar records.
//! Each shard then streams its own run back through the same shard-local
//! scatter + sort-merge the in-memory sharded pass uses, so the frozen
//! graph is bit-identical to the in-memory build at any
//! shard count × thread count × budget — the fourth independence axis of
//! the construction contract (see `crate::build` and `DESIGN.md`).
//!
//! This module owns the mechanical pieces: budget resolution, the
//! RAII-cleaned temp directory, and the run writers/readers. The actual
//! spilled packing lives in `crate::build`.
//!
//! ## Run format
//!
//! One 16-byte record per half-edge, fixed layout, little-endian:
//! `row: u32 | col: u32 | weight-bits: u64` (`f64::to_bits`). Runs are
//! pure streams — no header, no framing — because record counts are known
//! from the counting pass and the format never leaves the process.

use crate::GraphError;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable holding the spill budget in **megabytes**.
/// Unlike `MOBY_THREADS`/`MOBY_SHARDS`, `0` is meaningful: a zero budget
/// spills every non-empty build (the spill-everything stress mode the CI
/// matrix runs). An unset/garbage value means "no budget, never spill".
pub const BUDGET_ENV: &str = "MOBY_SPILL_BUDGET_MB";

/// Bytes one half-edge occupies both in a spill-run record and in the
/// in-memory half-edge columns (`row: u32 + col: u32 + weight: f64`) —
/// the unit of the budget rule.
pub const HALF_EDGE_BYTES: usize = 16;

/// Resolve the spill budget in **bytes**: the explicit override (in MB)
/// wins, then [`BUDGET_ENV`], then `None` (no budget — never spill).
/// Mirrors [`crate::par::thread_count`]-style resolution, except that `0`
/// is kept (spill everything) rather than treated as "auto".
pub fn budget_bytes(explicit_mb: Option<u64>) -> Option<u64> {
    explicit_mb
        .or_else(|| parse_budget(std::env::var(BUDGET_ENV).ok().as_deref()))
        .map(|mb| mb.saturating_mul(1024 * 1024))
}

/// Parse a [`BUDGET_ENV`] value; empty or garbage mean "no budget".
fn parse_budget(raw: Option<&str>) -> Option<u64> {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
}

/// The budget rule: spill when the estimated scatter footprint —
/// `half_edges ×` [`HALF_EDGE_BYTES`], the in-memory half-edge columns
/// the scatter pass would otherwise hold — **exceeds** the budget.
/// No budget means never; an empty build never spills (there is nothing
/// to buffer).
pub fn should_spill(half_edges: usize, budget_bytes: Option<u64>) -> bool {
    budget_bytes.is_some_and(|b| (half_edges as u64).saturating_mul(HALF_EDGE_BYTES as u64) > b)
}

/// Format a spill I/O failure as the crate's [`GraphError::Spill`]
/// variant (`std::io::Error` is neither `Clone` nor `PartialEq`, so the
/// variant carries the rendered message).
pub(crate) fn spill_error(context: &str, path: &Path, err: &std::io::Error) -> GraphError {
    GraphError::Spill(format!("{context} {}: {err}", path.display()))
}

/// Process-unique suffix so concurrent builds never share a directory.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A RAII temp directory holding one build's spill runs: created under
/// the given base (default [`std::env::temp_dir`]) and **removed on drop**
/// — success, early return and panic unwind all clean up the runs.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh spill directory under `base` (or the system temp
    /// dir). Fails with [`GraphError::Spill`] when the base is not
    /// writable — e.g. it names an existing file.
    pub fn create(base: Option<&Path>) -> crate::Result<SpillDir> {
        let base = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let seq = SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!("moby-spill-{}-{seq}", std::process::id()));
        fs::create_dir_all(&path).map_err(|e| spill_error("creating spill dir", &path, &e))?;
        Ok(SpillDir { path })
    }

    /// The directory the runs live under.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best-effort: cleanup failure must never turn into a panic-in-drop.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Buffered per-shard run writers for the partition pass. Half-edges are
/// appended in global insertion order; write failures are **latched**
/// (the per-record path stays infallible so the scatter loop needs no
/// error plumbing) and surface from [`ShardRunWriters::finish`].
pub struct ShardRunWriters {
    paths: Vec<PathBuf>,
    writers: Vec<BufWriter<File>>,
    counts: Vec<u64>,
    err: Option<GraphError>,
}

impl ShardRunWriters {
    /// Open one run file per shard under `dir`. `tag` keeps multiple
    /// packs in the same directory apart (a directed build packs both an
    /// out- and an in-adjacency).
    pub fn create(dir: &Path, shards: usize, tag: &str) -> crate::Result<ShardRunWriters> {
        let mut paths = Vec::with_capacity(shards);
        let mut writers = Vec::with_capacity(shards);
        for s in 0..shards {
            let path = dir.join(format!("run-{tag}-{s}.bin"));
            let file =
                File::create(&path).map_err(|e| spill_error("creating spill run", &path, &e))?;
            writers.push(BufWriter::with_capacity(1 << 16, file));
            paths.push(path);
        }
        Ok(ShardRunWriters {
            paths,
            writers,
            counts: vec![0u64; shards],
            err: None,
        })
    }

    /// Append one half-edge record to a shard's run. Errors latch; the
    /// first one is reported by [`ShardRunWriters::finish`].
    #[inline]
    pub fn push(&mut self, shard: usize, row: u32, col: u32, weight: f64) {
        if self.err.is_some() {
            return;
        }
        let mut rec = [0u8; HALF_EDGE_BYTES];
        rec[0..4].copy_from_slice(&row.to_le_bytes());
        rec[4..8].copy_from_slice(&col.to_le_bytes());
        rec[8..16].copy_from_slice(&weight.to_bits().to_le_bytes());
        if let Err(e) = self.writers[shard].write_all(&rec) {
            self.err = Some(spill_error("writing spill run", &self.paths[shard], &e));
            return;
        }
        self.counts[shard] += 1;
    }

    /// Flush every run and hand back the readable [`ShardRuns`], or the
    /// first latched/flush error.
    pub fn finish(mut self) -> crate::Result<ShardRuns> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        for (s, w) in self.writers.iter_mut().enumerate() {
            w.flush()
                .map_err(|e| spill_error("flushing spill run", &self.paths[s], &e))?;
        }
        Ok(ShardRuns {
            paths: self.paths,
            counts: self.counts,
        })
    }
}

/// The finished, readable per-shard runs of one pack. Shards replay
/// independently ([`ShardRuns::for_each`] opens its own reader), so the
/// merge stage can stream every shard in parallel.
#[derive(Debug)]
pub struct ShardRuns {
    paths: Vec<PathBuf>,
    counts: Vec<u64>,
}

impl ShardRuns {
    /// Number of half-edge records in a shard's run.
    pub fn shard_len(&self, shard: usize) -> u64 {
        self.counts[shard]
    }

    /// Stream one shard's run in write (= global insertion) order.
    pub fn for_each(&self, shard: usize, f: &mut dyn FnMut(u32, u32, f64)) -> crate::Result<()> {
        let path = &self.paths[shard];
        let file = File::open(path).map_err(|e| spill_error("opening spill run", path, &e))?;
        let mut reader = BufReader::with_capacity(1 << 16, file);
        let mut rec = [0u8; HALF_EDGE_BYTES];
        for _ in 0..self.counts[shard] {
            reader
                .read_exact(&mut rec)
                .map_err(|e| spill_error("reading spill run", path, &e))?;
            let row = u32::from_le_bytes(rec[0..4].try_into().expect("record layout"));
            let col = u32::from_le_bytes(rec[4..8].try_into().expect("record layout"));
            let w = f64::from_bits(u64::from_le_bytes(rec[8..16].try_into().expect("layout")));
            f(row, col, w);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_resolution_prefers_explicit_and_keeps_zero() {
        assert_eq!(budget_bytes(Some(2)), Some(2 * 1024 * 1024));
        assert_eq!(budget_bytes(Some(0)), Some(0));
        // Explicit None falls through to the environment; the test
        // processes don't set it globally, so unset means no budget here.
        if std::env::var(BUDGET_ENV).is_err() {
            assert_eq!(budget_bytes(None), None);
        }
        assert_eq!(parse_budget(Some("64")), Some(64));
        assert_eq!(parse_budget(Some(" 0 ")), Some(0));
        assert_eq!(parse_budget(Some("garbage")), None);
        assert_eq!(parse_budget(Some("")), None);
        assert_eq!(parse_budget(None), None);
    }

    #[test]
    fn budget_rule_gates_on_estimated_footprint() {
        assert!(!should_spill(1_000, None));
        assert!(should_spill(1_000, Some(0)));
        assert!(should_spill(1_000, Some(15_999)));
        assert!(!should_spill(1_000, Some(16_000)));
        // An empty build never spills, even at zero budget.
        assert!(!should_spill(0, Some(0)));
    }

    #[test]
    fn runs_round_trip_bitwise_in_insertion_order() {
        let dir = SpillDir::create(None).unwrap();
        let mut w = ShardRunWriters::create(dir.path(), 2, "t").unwrap();
        w.push(0, 3, 7, 1.5);
        w.push(1, 9, 2, -0.0); // -0.0 must survive bit-exactly
        w.push(0, 3, 8, f64::MIN_POSITIVE);
        let runs = w.finish().unwrap();
        assert_eq!(runs.shard_len(0), 2);
        assert_eq!(runs.shard_len(1), 1);
        let mut got = Vec::new();
        runs.for_each(0, &mut |r, c, w| got.push((r, c, w.to_bits())))
            .unwrap();
        assert_eq!(
            got,
            vec![
                (3, 7, 1.5f64.to_bits()),
                (3, 8, f64::MIN_POSITIVE.to_bits())
            ]
        );
        got.clear();
        runs.for_each(1, &mut |r, c, w| got.push((r, c, w.to_bits())))
            .unwrap();
        assert_eq!(got, vec![(9, 2, (-0.0f64).to_bits())]);
    }

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let dir = SpillDir::create(None).unwrap();
        let path = dir.path().to_path_buf();
        std::fs::write(path.join("leftover.bin"), b"x").unwrap();
        assert!(path.exists());
        drop(dir);
        assert!(!path.exists(), "drop must remove the run directory");
    }

    #[test]
    fn spill_dir_is_removed_on_panic_unwind() {
        let probe = SpillDir::create(None).unwrap();
        let base = probe.path().to_path_buf();
        // Build a guard inside the unwinding closure; its Drop must run.
        let path_cell = std::sync::Mutex::new(PathBuf::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let dir = SpillDir::create(Some(&base)).unwrap();
            std::fs::write(dir.path().join("run-x-0.bin"), b"x").unwrap();
            *path_cell.lock().unwrap() = dir.path().to_path_buf();
            panic!("simulated mid-build failure");
        }));
        assert!(result.is_err());
        let leaked = path_cell.lock().unwrap().clone();
        assert!(!leaked.as_os_str().is_empty());
        assert!(
            !leaked.exists(),
            "unwind must remove the run directory via the RAII guard"
        );
    }

    #[test]
    fn unwritable_base_is_a_clear_error_not_a_panic() {
        // Point the base at an existing *file*: create_dir_all must fail.
        let holder = SpillDir::create(None).unwrap();
        let file_base = holder.path().join("not-a-dir");
        std::fs::write(&file_base, b"occupied").unwrap();
        let err = SpillDir::create(Some(&file_base)).unwrap_err();
        match &err {
            GraphError::Spill(msg) => {
                assert!(msg.contains("creating spill dir"), "got: {msg}");
            }
            other => panic!("expected GraphError::Spill, got {other:?}"),
        }
        assert!(err.to_string().contains("spill"));
    }
}
