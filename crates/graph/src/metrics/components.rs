//! Connected components.

use crate::{CsrGraph, NodeId, WeightedGraph};
use std::collections::HashMap;

/// Assign every node to a connected component (ignoring edge direction) and
/// return the mapping from node id to component label (0-based, labelled in
/// discovery order).
pub fn connected_components(graph: &WeightedGraph) -> HashMap<NodeId, usize> {
    connected_components_csr(&graph.freeze())
}

/// [`connected_components`] over an already-frozen [`CsrGraph`] — the DFS
/// walks contiguous out- (and, for directed graphs, in-) rows.
pub fn connected_components_csr(graph: &CsrGraph) -> HashMap<NodeId, usize> {
    let n = graph.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            // For directed graphs treat edges as undirected for reachability
            // (for undirected graphs in_row aliases row — scan it once).
            let (out_t, _) = graph.row(u);
            let in_t = if graph.is_directed() {
                graph.in_row(u).0
            } else {
                &[]
            };
            for &v in out_t.iter().chain(in_t) {
                let v = v as usize;
                if label[v] == usize::MAX {
                    label[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), label[i]))
        .collect()
}

/// The number of nodes in the largest connected component (0 for an empty
/// graph).
pub fn largest_component_size(graph: &WeightedGraph) -> usize {
    largest_component_size_csr(&graph.freeze())
}

/// [`largest_component_size`] over an already-frozen [`CsrGraph`].
pub fn largest_component_size_csr(graph: &CsrGraph) -> usize {
    let comps = connected_components_csr(graph);
    let mut sizes: HashMap<usize, usize> = HashMap::new();
    for c in comps.values() {
        *sizes.entry(*c).or_insert(0) += 1;
    }
    sizes.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let c = connected_components(&g);
        assert_eq!(c[&1], c[&2]);
        assert_eq!(c[&2], c[&3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn two_components_and_isolate() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 1.0);
        g.add_node(9);
        let c = connected_components(&g);
        assert_eq!(c[&1], c[&2]);
        assert_eq!(c[&3], c[&4]);
        assert_ne!(c[&1], c[&3]);
        assert_ne!(c[&9], c[&1]);
        assert_ne!(c[&9], c[&3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn directed_reachability_is_symmetric_for_components() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0); // only 1 -> 2
        g.add_edge(3, 2, 1.0); // only 3 -> 2
        let c = connected_components(&g);
        // Weakly connected: all in one component.
        assert_eq!(c[&1], c[&2]);
        assert_eq!(c[&2], c[&3]);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::new_undirected();
        assert!(connected_components(&g).is_empty());
        assert_eq!(largest_component_size(&g), 0);
    }
}
