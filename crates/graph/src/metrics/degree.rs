//! Degree and strength statistics.

use crate::{CsrGraph, NodeId, WeightedGraph};
use std::collections::HashMap;

/// Per-graph degree summary statistics.
///
/// The station-selection algorithm needs the **minimum degree of the
/// pre-existing stations** (Algorithm 1, line 1); the reporting layer also
/// prints the mean and maximum.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSummary {
    /// Smallest degree over the summarised nodes.
    pub min: usize,
    /// Largest degree over the summarised nodes.
    pub max: usize,
    /// Mean degree over the summarised nodes.
    pub mean: f64,
    /// Number of nodes summarised.
    pub count: usize,
}

impl DegreeSummary {
    /// Summarise a collected degree list (`None` when empty).
    fn from_degrees(degrees: Vec<usize>) -> Option<Self> {
        if degrees.is_empty() {
            return None;
        }
        let min = *degrees.iter().min().expect("non-empty");
        let max = *degrees.iter().max().expect("non-empty");
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        Some(Self {
            min,
            max,
            mean,
            count: degrees.len(),
        })
    }

    /// Summarise the degrees of the given node ids in `graph`. Ids not in
    /// the graph are skipped. Returns `None` when no listed node exists.
    pub fn for_nodes(graph: &WeightedGraph, ids: &[NodeId]) -> Option<Self> {
        Self::from_degrees(ids.iter().filter_map(|&id| graph.degree_of(id)).collect())
    }

    /// Summarise every node in the graph.
    pub fn for_graph(graph: &WeightedGraph) -> Option<Self> {
        Self::for_nodes(graph, graph.node_ids())
    }

    /// [`DegreeSummary::for_nodes`] over an already-frozen [`CsrGraph`]:
    /// degrees come straight off the offsets array.
    pub fn for_nodes_csr(graph: &CsrGraph, ids: &[NodeId]) -> Option<Self> {
        Self::from_degrees(ids.iter().filter_map(|&id| graph.degree_of(id)).collect())
    }

    /// [`DegreeSummary::for_graph`] over an already-frozen [`CsrGraph`].
    pub fn for_graph_csr(graph: &CsrGraph) -> Option<Self> {
        Self::for_nodes_csr(graph, graph.node_ids())
    }
}

/// Degree (number of distinct neighbours) for every node id.
pub fn degree_map(graph: &WeightedGraph) -> HashMap<NodeId, usize> {
    graph
        .node_ids()
        .iter()
        .map(|&id| (id, graph.degree_of(id).expect("listed id exists")))
        .collect()
}

/// [`degree_map`] over an already-frozen [`CsrGraph`]: degrees are row
/// lengths read straight off the offsets array.
pub fn degree_map_csr(graph: &CsrGraph) -> HashMap<NodeId, usize> {
    (0..graph.node_count())
        .map(|u| (graph.id_of(u).expect("dense index valid"), graph.degree(u)))
        .collect()
}

/// Strength (sum of incident edge weights) for every node id.
pub fn strength_map(graph: &WeightedGraph) -> HashMap<NodeId, f64> {
    graph
        .node_ids()
        .iter()
        .map(|&id| (id, graph.strength_of(id).expect("listed id exists")))
        .collect()
}

/// [`strength_map`] over an already-frozen [`CsrGraph`]: strengths come
/// from the cached per-node weighted degrees, no edge walk at all.
pub fn strength_map_csr(graph: &CsrGraph) -> HashMap<NodeId, f64> {
    (0..graph.node_count())
        .map(|u| {
            (
                graph.id_of(u).expect("dense index valid"),
                graph.strength(u),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_leaf() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(3, 4, 5.0);
        g
    }

    #[test]
    fn degree_map_counts_neighbours() {
        let g = triangle_plus_leaf();
        let d = degree_map(&g);
        assert_eq!(d[&1], 2);
        assert_eq!(d[&3], 3);
        assert_eq!(d[&4], 1);
    }

    #[test]
    fn strength_map_sums_weights() {
        let g = triangle_plus_leaf();
        let s = strength_map(&g);
        assert_eq!(s[&1], 3.0);
        assert_eq!(s[&3], 7.0);
        assert_eq!(s[&4], 5.0);
    }

    #[test]
    fn summary_for_all_nodes() {
        let g = triangle_plus_leaf();
        let s = DegreeSummary::for_graph(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_for_subset_ignores_missing() {
        let g = triangle_plus_leaf();
        let s = DegreeSummary::for_nodes(&g, &[1, 4, 999]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
    }

    #[test]
    fn summary_of_nothing_is_none() {
        let g = triangle_plus_leaf();
        assert!(DegreeSummary::for_nodes(&g, &[999]).is_none());
        let empty = WeightedGraph::new_undirected();
        assert!(DegreeSummary::for_graph(&empty).is_none());
    }

    #[test]
    fn csr_summary_matches_builder_summary() {
        let g = triangle_plus_leaf();
        let c = g.freeze();
        assert_eq!(
            DegreeSummary::for_graph_csr(&c),
            DegreeSummary::for_graph(&g)
        );
        assert_eq!(
            DegreeSummary::for_nodes_csr(&c, &[1, 4, 999]),
            DegreeSummary::for_nodes(&g, &[1, 4, 999])
        );
        assert!(DegreeSummary::for_nodes_csr(&c, &[999]).is_none());
    }
}
