//! Gini coefficient.

/// The Gini coefficient of a set of non-negative values — the equity metric
/// the bike-share literature uses to describe how evenly trips are spread
/// over stations (0 = perfectly even, → 1 = concentrated on one station).
///
/// Negative and non-finite values are ignored. Returns 0 when fewer than two
/// valid values remain or when all values are zero.
pub fn gini_coefficient(values: &[f64]) -> f64 {
    let mut vals: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .collect();
    if vals.len() < 2 {
        return 0.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
    let n = vals.len() as f64;
    let total: f64 = vals.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1)/n   with i starting at 1.
    let weighted: f64 = vals
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_even_is_zero() {
        assert!((gini_coefficient(&[5.0, 5.0, 5.0, 5.0])).abs() < 1e-12);
    }

    #[test]
    fn fully_concentrated_approaches_one() {
        // One station takes all trips among many.
        let mut v = vec![0.0; 99];
        v.push(1000.0);
        let g = gini_coefficient(&v);
        assert!(g > 0.95 && g <= 1.0, "gini {g}");
    }

    #[test]
    fn known_small_case() {
        // Values 1, 2, 3: G = 2*(1*1+2*2+3*3)/(3*6) - 4/3 = 28/18 - 4/3 = 2/9.
        let g = gini_coefficient(&[1.0, 2.0, 3.0]);
        assert!((g - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn order_does_not_matter() {
        let a = gini_coefficient(&[3.0, 1.0, 2.0]);
        let b = gini_coefficient(&[1.0, 2.0, 3.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[4.0]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn invalid_values_are_ignored() {
        let with_bad = gini_coefficient(&[1.0, f64::NAN, 2.0, -5.0, 3.0, f64::INFINITY]);
        let clean = gini_coefficient(&[1.0, 2.0, 3.0]);
        assert!((with_bad - clean).abs() < 1e-12);
    }

    #[test]
    fn is_scale_invariant() {
        let a = gini_coefficient(&[1.0, 2.0, 5.0, 10.0]);
        let b = gini_coefficient(&[10.0, 20.0, 50.0, 100.0]);
        assert!((a - b).abs() < 1e-12);
    }
}
