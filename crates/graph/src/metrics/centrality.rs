//! Betweenness and closeness centrality.
//!
//! Both are computed on the weighted graph using Dijkstra shortest paths
//! where the *length* of an edge is the reciprocal of its weight: heavily
//! used station pairs are "close" in trip space, which matches how the
//! bike-share literature applies these centralities to trip-weighted
//! networks. Passing `weighted = false` uses hop counts instead.
//!
//! Betweenness uses Brandes' algorithm; the per-source accumulation is the
//! most expensive metric in the suite (O(V·E log V)), so both centralities
//! run their per-source sweeps on the shared deterministic scheduler
//! ([`crate::par`]): sources are chunked into contiguous ranges, each chunk
//! accumulates into its own buffer, and the buffers merge in fixed chunk
//! order — so the scores are bit-identical at any thread count (the old
//! ad-hoc scoped-thread implementation merged in thread-completion order,
//! which was not).

use crate::{par, CsrGraph, NodeId, WeightedGraph};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A min-heap entry for Dijkstra.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (max-heap) pops the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn edge_length(weight: f64, weighted: bool) -> f64 {
    if weighted {
        // Heavier traffic = shorter effective length. Weight 0 edges are
        // treated as absent (infinite length) by returning INFINITY.
        if weight > 0.0 {
            1.0 / weight
        } else {
            f64::INFINITY
        }
    } else {
        1.0
    }
}

/// Single-source shortest paths (Dijkstra) over CSR rows returning, for
/// each node: distance, number of shortest paths (sigma) and predecessor
/// lists.
fn brandes_sssp(
    graph: &CsrGraph,
    source: usize,
    weighted: bool,
) -> (Vec<f64>, Vec<f64>, Vec<Vec<usize>>, Vec<usize>) {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut sigma = vec![0.0; n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut settled = vec![false; n];

    dist[source] = 0.0;
    sigma[source] = 1.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u] {
            continue;
        }
        settled[u] = true;
        order.push(u);
        let (targets, weights) = graph.row(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let v = v as usize;
            if v == u {
                continue; // self-loops never lie on shortest paths
            }
            let len = edge_length(w, weighted);
            if !len.is_finite() {
                continue;
            }
            let nd = d + len;
            if nd < dist[v] - 1e-12 {
                dist[v] = nd;
                sigma[v] = sigma[u];
                preds[v].clear();
                preds[v].push(u);
                heap.push(HeapEntry { dist: nd, node: v });
            } else if (nd - dist[v]).abs() <= 1e-12 {
                sigma[v] += sigma[u];
                preds[v].push(u);
            }
        }
    }
    (dist, sigma, preds, order)
}

/// Brandes betweenness centrality for every node.
///
/// * `weighted` — use reciprocal trip weights as edge lengths (otherwise hop
///   counts).
/// * `normalized` — divide by `(n-1)(n-2)` (undirected: `(n-1)(n-2)/2`) so
///   scores are comparable across graph sizes.
pub fn betweenness_centrality(
    graph: &WeightedGraph,
    weighted: bool,
    normalized: bool,
) -> HashMap<NodeId, f64> {
    betweenness_centrality_csr(&graph.freeze(), weighted, normalized)
}

/// [`betweenness_centrality`] over an already-frozen [`CsrGraph`] — the
/// per-source Dijkstra sweeps walk contiguous CSR rows.
pub fn betweenness_centrality_csr(
    graph: &CsrGraph,
    weighted: bool,
    normalized: bool,
) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    // Per-source trees cost roughly the same regardless of the source's own
    // degree, so chunk the source space uniformly. Chunk count is fixed (32)
    // so the merge below is the same reduction at any thread count.
    let threads = par::thread_count(None);
    let chunks = par::RowChunks::uniform(n, 32);
    let partials = par::par_map(&chunks, threads, |_, range| {
        let mut local = vec![0.0f64; n];
        for s in range {
            let (_, sigma, preds, order) = brandes_sssp(graph, s, weighted);
            let mut delta = vec![0.0f64; n];
            for &w in order.iter().rev() {
                for &v in &preds[w] {
                    if sigma[w] > 0.0 {
                        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                    }
                }
                if w != s {
                    local[w] += delta[w];
                }
            }
        }
        local
    });
    let mut scores = vec![0.0f64; n];
    for local in partials {
        for (score, l) in scores.iter_mut().zip(&local) {
            *score += l;
        }
    }
    if !graph.is_directed() {
        // Each unordered pair was counted from both endpoints.
        for s in scores.iter_mut() {
            *s /= 2.0;
        }
    }
    if normalized && n > 2 {
        let scale = if graph.is_directed() {
            ((n - 1) * (n - 2)) as f64
        } else {
            ((n - 1) * (n - 2)) as f64 / 2.0
        };
        for s in scores.iter_mut() {
            *s /= scale;
        }
    }
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), scores[i]))
        .collect()
}

/// Closeness centrality for every node: `(reachable - 1) / sum_of_distances`,
/// scaled by the fraction of the graph that is reachable (the Wasserman–Faust
/// correction), so nodes in small components do not get inflated scores.
/// Unreachable or isolated nodes score 0.
pub fn closeness_centrality(graph: &WeightedGraph, weighted: bool) -> HashMap<NodeId, f64> {
    closeness_centrality_csr(&graph.freeze(), weighted)
}

/// [`closeness_centrality`] over an already-frozen [`CsrGraph`] — one
/// shortest-path tree per node, parallelised over uniform source chunks on
/// the shared scheduler. Each source's score is written exclusively by its
/// chunk, so the result is deterministic at any thread count.
pub fn closeness_centrality_csr(graph: &CsrGraph, weighted: bool) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let threads = par::thread_count(None);
    let chunks = par::RowChunks::uniform(n, 32);
    let mut scores = vec![0.0f64; n];
    par::par_fill(&chunks, threads, &mut scores, |_, range, out| {
        for (j, s) in range.clone().enumerate() {
            let (dist, _, _, _) = brandes_sssp(graph, s, weighted);
            let mut reachable = 0usize;
            let mut total = 0.0f64;
            for (i, d) in dist.iter().enumerate() {
                if i != s && d.is_finite() {
                    reachable += 1;
                    total += d;
                }
            }
            out[j] = if reachable == 0 || total == 0.0 {
                0.0
            } else {
                let frac = reachable as f64 / (n - 1).max(1) as f64;
                frac * reachable as f64 / total
            };
        }
    });
    (0..n)
        .map(|s| (graph.id_of(s).expect("dense index valid"), scores[s]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 1 - 2 - 3 - 4 - 5 with unit weights.
    fn path5() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 5)] {
            g.add_edge(a, b, 1.0);
        }
        g
    }

    #[test]
    fn betweenness_of_path_centre_is_highest() {
        let g = path5();
        let b = betweenness_centrality(&g, false, false);
        // Exact values for P5: ends 0, next 3, centre 4.
        assert_eq!(b[&1], 0.0);
        assert_eq!(b[&5], 0.0);
        assert!((b[&2] - 3.0).abs() < 1e-9);
        assert!((b[&4] - 3.0).abs() < 1e-9);
        assert!((b[&3] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_normalisation() {
        let g = path5();
        let b = betweenness_centrality(&g, false, true);
        // Normalised by (n-1)(n-2)/2 = 6.
        assert!((b[&3] - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn star_centre_has_all_betweenness() {
        let mut g = WeightedGraph::new_undirected();
        for leaf in 1..=4 {
            g.add_edge(0, leaf, 1.0);
        }
        let b = betweenness_centrality(&g, false, false);
        // Centre lies on all C(4,2) = 6 pairs' shortest paths.
        assert!((b[&0] - 6.0).abs() < 1e-9);
        for leaf in 1..=4 {
            assert_eq!(b[&leaf], 0.0);
        }
    }

    #[test]
    fn weighted_betweenness_prefers_heavy_edges() {
        // Two routes from 1 to 3: via 2 (heavy = short) and via 4 (light = long).
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 10.0);
        g.add_edge(2, 3, 10.0);
        g.add_edge(1, 4, 1.0);
        g.add_edge(4, 3, 1.0);
        let b = betweenness_centrality(&g, true, false);
        assert!(b[&2] > b[&4]);
    }

    #[test]
    fn closeness_of_path() {
        let g = path5();
        let c = closeness_centrality(&g, false);
        // Centre: distances 2+1+1+2 = 6 -> 4/6; end: 1+2+3+4 = 10 -> 4/10.
        assert!((c[&3] - 4.0 / 6.0).abs() < 1e-9);
        assert!((c[&1] - 4.0 / 10.0).abs() < 1e-9);
        assert!(c[&3] > c[&2]);
        assert!(c[&2] > c[&1]);
    }

    #[test]
    fn closeness_of_disconnected_parts_is_damped() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 1.0);
        let c = closeness_centrality(&g, false);
        // Node 4 reaches 2 nodes at distance 1 each out of 4 possible:
        // frac = 2/4, closeness = 0.5 * 2/2 = 0.5.
        assert!((c[&4] - 0.5).abs() < 1e-9);
        // Node 1 reaches 1 node at distance 1: 0.25 * 1/1 = 0.25.
        assert!((c[&1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn isolated_node_scores_zero() {
        let mut g = path5();
        g.add_node(99);
        let b = betweenness_centrality(&g, false, false);
        let c = closeness_centrality(&g, false);
        assert_eq!(b[&99], 0.0);
        assert_eq!(c[&99], 0.0);
    }

    #[test]
    fn empty_graph_is_empty_result() {
        let g = WeightedGraph::new_undirected();
        assert!(betweenness_centrality(&g, false, true).is_empty());
        assert!(closeness_centrality(&g, false).is_empty());
    }

    #[test]
    fn self_loops_do_not_affect_centrality() {
        let mut a = path5();
        let b = {
            let mut g = path5();
            g.add_edge(3, 3, 50.0);
            g
        };
        let ba = betweenness_centrality(&a, false, false);
        let bb = betweenness_centrality(&b, false, false);
        for id in 1..=5u64 {
            assert!((ba[&id] - bb[&id]).abs() < 1e-9);
        }
        // keep `a` used
        a.add_node(100);
    }
}
