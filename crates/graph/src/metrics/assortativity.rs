//! Degree assortativity.

use crate::{CsrGraph, WeightedGraph};

/// Degree assortativity coefficient (Newman): the Pearson correlation of the
/// degrees at either end of an edge, computed over the undirected projection
/// with self-loops ignored.
///
/// Positive values mean hubs connect to hubs; negative values mean hubs
/// connect to low-degree nodes (typical of hub-and-spoke transport
/// networks). Returns 0 for degenerate graphs (fewer than two edges, or all
/// endpoint degrees equal).
pub fn degree_assortativity(graph: &WeightedGraph) -> f64 {
    degree_assortativity_csr(&graph.freeze())
}

/// [`degree_assortativity`] over an already-frozen [`CsrGraph`].
pub fn degree_assortativity_csr(graph: &CsrGraph) -> f64 {
    let undirected;
    let g = if graph.is_directed() {
        undirected = graph.to_undirected();
        &undirected
    } else {
        graph
    };
    // Collect (deg(u), deg(v)) for each edge in both orientations, which is
    // the standard symmetric treatment for undirected graphs. Degrees come
    // straight off the CSR offsets.
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for u in 0..g.node_count() {
        let (targets, _) = g.row(u);
        for &v in targets {
            let v = v as usize;
            if v <= u {
                continue; // each undirected edge once; self-loops skipped
            }
            let du = g.degree(u) as f64;
            let dv = g.degree(v) as f64;
            xs.push(du);
            ys.push(dv);
            xs.push(dv);
            ys.push(du);
        }
    }
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_graph_is_perfectly_disassortative() {
        let mut g = WeightedGraph::new_undirected();
        for leaf in 1..=5 {
            g.add_edge(0, leaf, 1.0);
        }
        let r = degree_assortativity(&g);
        assert!((r + 1.0).abs() < 1e-9, "star assortativity {r}");
    }

    #[test]
    fn path_graph_is_disassortative() {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            g.add_edge(a, b, 1.0);
        }
        let r = degree_assortativity(&g);
        assert!(r < 0.0);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn regular_graph_is_degenerate_zero() {
        // A cycle: every node has degree 2, variance is zero.
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 1)] {
            g.add_edge(a, b, 1.0);
        }
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn two_hub_pairs_are_assortative() {
        // Two connected hubs, each with private leaves: hub-hub edge plus
        // hub-leaf edges gives a mix; removing it flips the sign, so check
        // the relative ordering rather than an absolute value.
        let mut with_hub_edge = WeightedGraph::new_undirected();
        for leaf in 10..14 {
            with_hub_edge.add_edge(1, leaf, 1.0);
        }
        for leaf in 20..24 {
            with_hub_edge.add_edge(2, leaf, 1.0);
        }
        let without = degree_assortativity(&with_hub_edge);
        with_hub_edge.add_edge(1, 2, 1.0);
        let with = degree_assortativity(&with_hub_edge);
        assert!(with > without);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let empty = WeightedGraph::new_undirected();
        assert_eq!(degree_assortativity(&empty), 0.0);
        let mut single_edge = WeightedGraph::new_undirected();
        single_edge.add_edge(1, 2, 3.0);
        // Both endpoints have degree 1: zero variance.
        assert_eq!(degree_assortativity(&single_edge), 0.0);
        let mut loops_only = WeightedGraph::new_undirected();
        loops_only.add_edge(1, 1, 2.0);
        assert_eq!(degree_assortativity(&loops_only), 0.0);
    }

    #[test]
    fn directed_input_uses_undirected_projection() {
        let mut d = WeightedGraph::new_directed();
        for leaf in 1..=5 {
            d.add_edge(0, leaf, 1.0);
        }
        let r = degree_assortativity(&d);
        assert!((r + 1.0).abs() < 1e-9);
    }
}
