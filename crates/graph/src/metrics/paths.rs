//! Shortest-path based descriptors: average path length, diameter and
//! global efficiency.
//!
//! The related work the paper builds on characterises bike-share networks
//! with "network efficiency" and connectivity descriptors alongside degree
//! and centrality; these helpers provide them for the validation and
//! reporting layers. Edge length is the reciprocal of the trip weight when
//! `weighted` is true (heavily used pairs are "close"), or one hop
//! otherwise.

use crate::{CsrGraph, WeightedGraph};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra distances from the node at dense index `source` to every node
/// (`f64::INFINITY` for unreachable nodes). Self-loops are ignored.
///
/// Freezes the builder graph per call; loops over many sources should
/// freeze once and call [`shortest_path_lengths_csr`].
pub fn shortest_path_lengths(graph: &WeightedGraph, source: usize, weighted: bool) -> Vec<f64> {
    shortest_path_lengths_csr(&graph.freeze(), source, weighted)
}

/// [`shortest_path_lengths`] over an already-frozen [`CsrGraph`].
pub fn shortest_path_lengths_csr(graph: &CsrGraph, source: usize, weighted: bool) -> Vec<f64> {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    let mut settled = vec![false; n];
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u] {
            continue;
        }
        settled[u] = true;
        let (targets, weights) = graph.row(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let v = v as usize;
            if v == u {
                continue;
            }
            let len = if weighted {
                if w > 0.0 {
                    1.0 / w
                } else {
                    continue;
                }
            } else {
                1.0
            };
            let nd = d + len;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    dist
}

/// Mean shortest-path length over all ordered pairs of distinct nodes that
/// can reach each other. Returns 0 for graphs with fewer than two nodes or
/// no reachable pairs. Freezes once, then runs one Dijkstra per source
/// over the CSR rows.
pub fn average_path_length(graph: &WeightedGraph, weighted: bool) -> f64 {
    let frozen = graph.freeze();
    let n = frozen.node_count();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for s in 0..n {
        for (t, d) in shortest_path_lengths_csr(&frozen, s, weighted)
            .into_iter()
            .enumerate()
        {
            if t != s && d.is_finite() {
                total += d;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

/// The longest finite shortest-path length in the graph (0 for graphs with
/// fewer than two nodes). Freezes once.
pub fn diameter(graph: &WeightedGraph, weighted: bool) -> f64 {
    let frozen = graph.freeze();
    let n = frozen.node_count();
    let mut max = 0.0f64;
    for s in 0..n {
        for (t, d) in shortest_path_lengths_csr(&frozen, s, weighted)
            .into_iter()
            .enumerate()
        {
            if t != s && d.is_finite() {
                max = max.max(d);
            }
        }
    }
    max
}

/// Global efficiency: the mean of `1 / d(s, t)` over all ordered pairs of
/// distinct nodes, with unreachable pairs contributing 0. Lies in `[0, 1]`
/// for unweighted graphs (1 = complete graph). Freezes once.
pub fn global_efficiency(graph: &WeightedGraph, weighted: bool) -> f64 {
    let frozen = graph.freeze();
    let n = frozen.node_count();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for s in 0..n {
        for (t, d) in shortest_path_lengths_csr(&frozen, s, weighted)
            .into_iter()
            .enumerate()
        {
            if t != s && d.is_finite() && d > 0.0 {
                total += 1.0 / d;
            }
        }
    }
    total / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            g.add_edge(a, b, 1.0);
        }
        g
    }

    fn triangle() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (1, 3)] {
            g.add_edge(a, b, 1.0);
        }
        g
    }

    #[test]
    fn distances_on_a_path() {
        let g = path4();
        let s = g.index_of(1).unwrap();
        let d = shortest_path_lengths(&g, s, false);
        let i4 = g.index_of(4).unwrap();
        assert_eq!(d[s], 0.0);
        assert_eq!(d[i4], 3.0);
    }

    #[test]
    fn triangle_descriptors() {
        let g = triangle();
        assert!((average_path_length(&g, false) - 1.0).abs() < 1e-12);
        assert_eq!(diameter(&g, false), 1.0);
        assert!((global_efficiency(&g, false) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_descriptors() {
        let g = path4();
        // Ordered distinct pairs: distances 1,2,3,1,1,2,2,1,1,3,2,1 -> mean 5/3.
        assert!((average_path_length(&g, false) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(diameter(&g, false), 3.0);
        let eff = global_efficiency(&g, false);
        assert!(eff > 0.5 && eff < 1.0);
    }

    #[test]
    fn weighted_lengths_use_reciprocal_weights() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 4.0); // length 0.25
        g.add_edge(2, 3, 2.0); // length 0.5
        let s = g.index_of(1).unwrap();
        let d = shortest_path_lengths(&g, s, true);
        assert!((d[g.index_of(3).unwrap()] - 0.75).abs() < 1e-12);
        assert!((diameter(&g, true) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pairs_are_skipped() {
        let mut g = path4();
        g.add_node(99);
        let s = g.index_of(1).unwrap();
        let d = shortest_path_lengths(&g, s, false);
        assert!(d[g.index_of(99).unwrap()].is_infinite());
        // Average and diameter only consider reachable pairs.
        assert!((average_path_length(&g, false) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(diameter(&g, false), 3.0);
        // Efficiency penalises the disconnected node (denominator grows).
        assert!(global_efficiency(&g, false) < global_efficiency(&path4(), false));
    }

    #[test]
    fn degenerate_graphs() {
        let empty = WeightedGraph::new_undirected();
        assert_eq!(average_path_length(&empty, false), 0.0);
        assert_eq!(diameter(&empty, false), 0.0);
        assert_eq!(global_efficiency(&empty, false), 0.0);
        let mut single = WeightedGraph::new_undirected();
        single.add_node(1);
        assert_eq!(average_path_length(&single, false), 0.0);
        // Out-of-range source returns all-infinite distances.
        let d = shortest_path_lengths(&single, 5, false);
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn directed_graph_respects_direction() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let s1 = g.index_of(1).unwrap();
        let s3 = g.index_of(3).unwrap();
        let from1 = shortest_path_lengths(&g, s1, false);
        let from3 = shortest_path_lengths(&g, s3, false);
        assert_eq!(from1[s3], 2.0);
        assert!(from3[s1].is_infinite());
    }
}
