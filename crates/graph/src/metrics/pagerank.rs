//! Weighted PageRank.
//!
//! The CSR path runs *pull-based* power iterations on the shared
//! deterministic scheduler ([`crate::par`]): each worker owns a contiguous
//! chunk of in-rows and computes its nodes' next scores exclusively, so no
//! synchronisation is needed and — because chunk boundaries and the
//! chunk-merge order of the convergence norm are independent of the thread
//! count — the scores are bit-identical at any parallelism.

use crate::{par, CsrGraph, NodeId, WeightedGraph};
use std::collections::HashMap;

/// Configuration for [`pagerank`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor, conventionally 0.85.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
    /// Worker-thread override. `None` resolves `MOBY_THREADS`, then
    /// [`std::thread::available_parallelism`] (see
    /// [`par::thread_count`]). The result is bit-identical either way.
    pub threads: Option<usize>,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
            threads: None,
        }
    }
}

/// Weighted PageRank over the graph's (out-)edges.
///
/// Transition probability from `u` to `v` is proportional to the weight of
/// the `u -> v` edge. Dangling nodes (no out-edges) redistribute their mass
/// uniformly. Scores sum to 1 over all nodes. Returns an empty map for an
/// empty graph.
///
/// Freezes the builder once and runs [`pagerank_csr`]; callers that
/// already hold a frozen [`CsrGraph`] should call that directly.
pub fn pagerank(graph: &WeightedGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    pagerank_csr(&graph.freeze(), config)
}

/// Weighted PageRank over a frozen [`CsrGraph`]: each power iteration is a
/// pull-based sweep over the in-rows, parallelised on the deterministic
/// row-chunk scheduler. A node's next score accumulates its in-neighbour
/// contributions in sorted row order — the same arithmetic and order as the
/// classic push-based serial sweep — so the result is bit-identical at any
/// thread count, including one.
pub fn pagerank_csr(graph: &CsrGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let threads = par::thread_count(config.threads);
    let in_chunks = par::RowChunks::from_offsets(graph.in_offsets());

    let uniform = 1.0 / n as f64;
    let damping = config.damping;
    let base = (1.0 - damping) * uniform;
    let dangling: Vec<u32> = (0..n)
        .filter(|&u| graph.strength(u) <= 0.0)
        .map(|u| u as u32)
        .collect();

    // Double-buffered scores on the persistent-worker driver: iteration k
    // reads `bufs[k % 2]` and writes `bufs[(k + 1) % 2]`; the caller-side
    // control window reduces the per-chunk diffs (chunk order), checks
    // convergence, and precomputes the next iteration's dangling share —
    // accumulated in dense index order like the classic serial sweep.
    let bufs = [
        par::SharedF64Buf::new(n, uniform),
        par::SharedF64Buf::new(n, 0.0),
    ];
    let chunk_diffs = par::SharedF64Buf::new(in_chunks.len(), 0.0);
    let dangling_share = par::SharedF64Buf::new(1, {
        let mass: f64 = dangling.iter().map(|_| uniform).sum();
        damping * mass * uniform
    });
    let mut final_buf = 0usize;
    if config.max_iterations > 0 {
        par::par_iterate(
            &in_chunks,
            threads,
            |k, ci, range| {
                let src = &bufs[(k % 2) as usize];
                let dst = &bufs[((k + 1) % 2) as usize];
                let share = dangling_share.get(0);
                let mut diff = 0.0f64;
                for v in range {
                    let (sources, weights) = graph.in_row(v);
                    let mut acc = base;
                    for (&u, &w) in sources.iter().zip(weights) {
                        let u = u as usize;
                        let s = graph.strength(u);
                        if s > 0.0 {
                            let scale = damping * src.get(u) / s;
                            acc += scale * w;
                        }
                    }
                    acc += share;
                    dst.set(v, acc);
                    diff += (acc - src.get(v)).abs();
                }
                chunk_diffs.set(ci, diff);
            },
            |k| {
                let diff: f64 = (0..chunk_diffs.len()).map(|i| chunk_diffs.get(i)).sum();
                let next_buf = ((k + 1) % 2) as usize;
                final_buf = next_buf;
                if diff < config.tolerance || k + 1 >= config.max_iterations as u64 {
                    return false;
                }
                let mut mass = 0.0f64;
                for &u in &dangling {
                    mass += bufs[next_buf].get(u as usize);
                }
                dangling_share.set(0, damping * mass * uniform);
                true
            },
        );
    }
    let rank = bufs[final_buf].to_vec();
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), rank[i]))
        .collect()
}

/// The legacy hash-map-walk PageRank, kept private as the reference for
/// the CSR/builder agreement tests below.
#[cfg(test)]
fn pagerank_hashmap(graph: &WeightedGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let out_strength: Vec<f64> = (0..n).map(|i| graph.strength(i)).collect();

    for _ in 0..config.max_iterations {
        let mut next = vec![(1.0 - config.damping) * uniform; n];
        let mut dangling_mass = 0.0;
        for u in 0..n {
            if out_strength[u] <= 0.0 {
                dangling_mass += rank[u];
                continue;
            }
            for (v, w) in graph.neighbors(u) {
                next[v] += config.damping * rank[u] * (w / out_strength[u]);
            }
        }
        let dangling_share = config.damping * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r += dangling_share;
        }
        let diff: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if diff < config.tolerance {
            break;
        }
    }
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), rank[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_returns_empty() {
        let g = WeightedGraph::new_directed();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn scores_sum_to_one() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 2.0);
        g.add_edge(1, 3, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        for id in [1, 2, 3] {
            assert!((pr[&id] - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_receives_more_rank() {
        let mut g = WeightedGraph::new_directed();
        // Everyone points at 1; 1 points at 2.
        for src in [2, 3, 4, 5] {
            g.add_edge(src, 1, 1.0);
        }
        g.add_edge(1, 2, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&1] > pr[&3]);
        assert!(pr[&1] > pr[&2]);
        assert!(pr[&2] > pr[&3], "2 benefits from 1's endorsement");
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0); // 2 is dangling
        g.add_node(3); // isolated & dangling
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weights_steer_rank() {
        let mut g = WeightedGraph::new_directed();
        // 1 links to 2 (weight 9) and to 3 (weight 1).
        g.add_edge(1, 2, 9.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&2] > pr[&3]);
    }

    #[test]
    fn csr_and_hashmap_agree_within_tolerance() {
        let mut g = WeightedGraph::new_directed();
        for (a, b, w) in [
            (1u64, 2u64, 3.0),
            (2, 3, 1.0),
            (3, 1, 2.0),
            (1, 3, 1.0),
            (4, 1, 5.0),
            (5, 5, 2.0), // self-loop
        ] {
            g.add_edge(a, b, w);
        }
        g.add_node(6); // dangling isolate
        let cfg = PageRankConfig::default();
        let csr = pagerank_csr(&g.freeze(), &cfg);
        let reference = pagerank_hashmap(&g, &cfg);
        assert_eq!(csr.len(), reference.len());
        for (id, r) in &reference {
            assert!(
                (csr[id] - r).abs() < 1e-9,
                "node {id}: csr {} vs reference {r}",
                csr[id]
            );
        }
    }

    #[test]
    fn parallel_thread_counts_are_bit_identical() {
        // Large enough that the row space splits into several chunks.
        let mut g = WeightedGraph::new_directed();
        for i in 0..200u64 {
            for j in 1..=5u64 {
                g.add_edge(i, (i * 7 + j * 13) % 200, (1 + (i + j) % 9) as f64);
            }
        }
        g.add_node(9_999); // dangling isolate
        let frozen = g.freeze();
        let serial = pagerank_csr(
            &frozen,
            &PageRankConfig {
                threads: Some(1),
                ..Default::default()
            },
        );
        for t in [2usize, 4, 8] {
            let parallel = pagerank_csr(
                &frozen,
                &PageRankConfig {
                    threads: Some(t),
                    ..Default::default()
                },
            );
            assert_eq!(parallel.len(), serial.len());
            for (id, r) in &serial {
                assert_eq!(
                    parallel[id].to_bits(),
                    r.to_bits(),
                    "node {id} diverged at {t} threads"
                );
            }
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        let cfg = PageRankConfig {
            max_iterations: 1,
            ..Default::default()
        };
        // One iteration must still produce finite, positive scores.
        let pr = pagerank(&g, &cfg);
        assert!(pr.values().all(|v| v.is_finite() && *v > 0.0));
    }
}
