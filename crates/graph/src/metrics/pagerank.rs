//! Weighted PageRank.

use crate::{NodeId, WeightedGraph};
use std::collections::HashMap;

/// Configuration for [`pagerank`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor, conventionally 0.85.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Weighted PageRank over the graph's (out-)edges.
///
/// Transition probability from `u` to `v` is proportional to the weight of
/// the `u -> v` edge. Dangling nodes (no out-edges) redistribute their mass
/// uniformly. Scores sum to 1 over all nodes. Returns an empty map for an
/// empty graph.
pub fn pagerank(graph: &WeightedGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let out_strength: Vec<f64> = (0..n).map(|i| graph.strength(i)).collect();

    for _ in 0..config.max_iterations {
        let mut next = vec![(1.0 - config.damping) * uniform; n];
        let mut dangling_mass = 0.0;
        for u in 0..n {
            if out_strength[u] <= 0.0 {
                dangling_mass += rank[u];
                continue;
            }
            for (v, w) in graph.neighbors(u) {
                next[v] += config.damping * rank[u] * (w / out_strength[u]);
            }
        }
        let dangling_share = config.damping * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r += dangling_share;
        }
        let diff: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if diff < config.tolerance {
            break;
        }
    }
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), rank[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_returns_empty() {
        let g = WeightedGraph::new_directed();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn scores_sum_to_one() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 2.0);
        g.add_edge(1, 3, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        for id in [1, 2, 3] {
            assert!((pr[&id] - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_receives_more_rank() {
        let mut g = WeightedGraph::new_directed();
        // Everyone points at 1; 1 points at 2.
        for src in [2, 3, 4, 5] {
            g.add_edge(src, 1, 1.0);
        }
        g.add_edge(1, 2, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&1] > pr[&3]);
        assert!(pr[&1] > pr[&2]);
        assert!(pr[&2] > pr[&3], "2 benefits from 1's endorsement");
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0); // 2 is dangling
        g.add_node(3); // isolated & dangling
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weights_steer_rank() {
        let mut g = WeightedGraph::new_directed();
        // 1 links to 2 (weight 9) and to 3 (weight 1).
        g.add_edge(1, 2, 9.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&2] > pr[&3]);
    }

    #[test]
    fn respects_iteration_budget() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        let cfg = PageRankConfig {
            max_iterations: 1,
            ..Default::default()
        };
        // One iteration must still produce finite, positive scores.
        let pr = pagerank(&g, &cfg);
        assert!(pr.values().all(|v| v.is_finite() && *v > 0.0));
    }
}
