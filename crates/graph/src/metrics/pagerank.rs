//! Weighted PageRank.
//!
//! The CSR path runs *pull-based* power iterations on the shared
//! deterministic scheduler ([`crate::par`]): each worker owns a contiguous
//! chunk of in-rows and computes its nodes' next scores exclusively, so no
//! synchronisation is needed and — because chunk boundaries and the
//! chunk-merge order of the convergence norm are independent of the thread
//! count — the scores are bit-identical at any parallelism.

use crate::{par, CsrGraph, NodeId, PermutedGraph, WeightedGraph};
use std::collections::HashMap;

/// Configuration for [`pagerank`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor, conventionally 0.85.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
    /// Worker-thread override. `None` resolves `MOBY_THREADS`, then
    /// [`std::thread::available_parallelism`] (see
    /// [`par::thread_count`]). The result is bit-identical either way.
    pub threads: Option<usize>,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
            threads: None,
        }
    }
}

/// Weighted PageRank over the graph's (out-)edges.
///
/// Transition probability from `u` to `v` is proportional to the weight of
/// the `u -> v` edge. Dangling nodes (no out-edges) redistribute their mass
/// uniformly. Scores sum to 1 over all nodes. Returns an empty map for an
/// empty graph.
///
/// Freezes the builder once and runs [`pagerank_csr`]; callers that
/// already hold a frozen [`CsrGraph`] should call that directly.
pub fn pagerank(graph: &WeightedGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    pagerank_csr(&graph.freeze(), config)
}

/// Weighted PageRank over a frozen [`CsrGraph`]: each power iteration is a
/// pull-based sweep over the in-rows, parallelised on the deterministic
/// row-chunk scheduler. A node's next score accumulates its in-neighbour
/// contributions positionally in row order — four register-resident lane
/// sums folded in a fixed position-derived order (the internal `row_dot`) — so
/// the result is bit-identical at any thread count, including one.
pub fn pagerank_csr(graph: &CsrGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    pagerank_impl(graph, None, config)
}

/// [`pagerank_csr`] over a degree-sorted [`PermutedGraph`].
///
/// The sweep streams the permuted in-rows (hub rows first, contributions
/// clustered at low indices), while every order-sensitive reduction — the
/// convergence norm and the dangling-mass fold — walks the *natural* node
/// order. Combined with the positional per-row fold this makes the
/// returned map **bit-identical** to [`pagerank_csr`] on the natural
/// graph; no unmapping step is needed because scores are keyed by
/// external [`NodeId`].
pub fn pagerank_permuted(
    permuted: &PermutedGraph,
    config: &PageRankConfig,
) -> HashMap<NodeId, f64> {
    pagerank_impl(permuted.graph(), Some(permuted.inv()), config)
}

/// Shared body of the natural and permuted entries. `inv`, when present,
/// maps natural node `u` to its storage position; every serial fold in the
/// control window iterates natural order through it, which is exactly what
/// keeps the two entries bit-identical.
fn pagerank_impl(
    graph: &CsrGraph,
    inv: Option<&[u32]>,
    config: &PageRankConfig,
) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let threads = par::thread_count(config.threads);
    let in_chunks = par::RowChunks::from_offsets(graph.in_offsets());
    let pos_of = |u: usize| inv.map_or(u, |m| m[u] as usize);

    let uniform = 1.0 / n as f64;
    let damping = config.damping;
    let base = (1.0 - damping) * uniform;
    // Dangling storage positions, listed in natural node order so the
    // mass fold below accumulates in the same sequence on both layouts.
    let dangling: Vec<u32> = (0..n)
        .map(&pos_of)
        .filter(|&p| graph.strength(p) <= 0.0)
        .map(|p| p as u32)
        .collect();

    // Double-buffered scores and **contributions** on the persistent-worker
    // driver: iteration k reads `ranks[k % 2]` / `contribs[k % 2]` and
    // writes the other pair. A node's contribution `damping * rank / s`
    // is computed once when its rank lands — hoisting the per-edge divide
    // and the dangling branch out of the hot loop, which is most of what
    // the batched sweep buys. The caller-side control window folds the
    // convergence norm and the next dangling share serially in natural
    // node order.
    let ranks = [
        par::SharedF64Buf::new(n, uniform),
        par::SharedF64Buf::new(n, 0.0),
    ];
    let contribs = [
        par::SharedF64Buf::new(n, 0.0),
        par::SharedF64Buf::new(n, 0.0),
    ];
    for p in 0..n {
        let s = graph.strength(p);
        if s > 0.0 {
            contribs[0].set(p, damping * uniform / s);
        }
    }
    let dangling_share = par::SharedF64Buf::new(1, {
        let mass: f64 = dangling.iter().map(|_| uniform).sum();
        damping * mass * uniform
    });
    let mut final_buf = 0usize;
    if config.max_iterations > 0 {
        par::par_iterate(
            &in_chunks,
            threads,
            |k, _ci, range| {
                let cur = (k % 2) as usize;
                let nxt = ((k + 1) % 2) as usize;
                let contrib = &contribs[cur];
                let r_dst = &ranks[nxt];
                let c_dst = &contribs[nxt];
                let add = base + dangling_share.get(0);
                for v in range {
                    let (sources, weights) = graph.in_row(v);
                    let acc = add + row_dot(sources, weights, contrib);
                    r_dst.set(v, acc);
                    let s = graph.strength(v);
                    c_dst.set(v, if s > 0.0 { damping * acc / s } else { 0.0 });
                }
            },
            |k| {
                let cur = (k % 2) as usize;
                let nxt = ((k + 1) % 2) as usize;
                let mut diff = 0.0f64;
                for u in 0..n {
                    let p = pos_of(u);
                    diff += (ranks[nxt].get(p) - ranks[cur].get(p)).abs();
                }
                final_buf = nxt;
                if diff < config.tolerance || k + 1 >= config.max_iterations as u64 {
                    return false;
                }
                let mut mass = 0.0f64;
                for &p in &dangling {
                    mass += ranks[nxt].get(p as usize);
                }
                dangling_share.set(0, damping * mass * uniform);
                true
            },
        );
    }
    let rank = ranks[final_buf].to_vec();
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), rank[i]))
        .collect()
}

/// The batched pull kernel: `Σ weights[i] * contrib[sources[i]]` over one
/// in-row, accumulated into four lane sums by position (`lanes[i % 4]`
/// within each fixed-width block, tail lanes by offset) and folded as
/// `(l0 + l1) + (l2 + l3)`. The fold order is a pure function of row
/// *positions* — never of chunk boundaries, thread count or layout — so
/// natural and permuted sweeps produce the same bits while the unrolled
/// body keeps four independent FMA chains in flight.
#[inline]
fn row_dot(sources: &[u32], weights: &[f64], contrib: &par::SharedF64Buf) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut st = sources.chunks_exact(4);
    let mut wt = weights.chunks_exact(4);
    for (t, w) in (&mut st).zip(&mut wt) {
        lanes[0] += w[0] * contrib.get(t[0] as usize);
        lanes[1] += w[1] * contrib.get(t[1] as usize);
        lanes[2] += w[2] * contrib.get(t[2] as usize);
        lanes[3] += w[3] * contrib.get(t[3] as usize);
    }
    for (i, (&t, &w)) in st.remainder().iter().zip(wt.remainder()).enumerate() {
        lanes[i] += w * contrib.get(t as usize);
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// The legacy hash-map-walk PageRank, kept private as the reference for
/// the CSR/builder agreement tests below.
#[cfg(test)]
fn pagerank_hashmap(graph: &WeightedGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let out_strength: Vec<f64> = (0..n).map(|i| graph.strength(i)).collect();

    for _ in 0..config.max_iterations {
        let mut next = vec![(1.0 - config.damping) * uniform; n];
        let mut dangling_mass = 0.0;
        for u in 0..n {
            if out_strength[u] <= 0.0 {
                dangling_mass += rank[u];
                continue;
            }
            for (v, w) in graph.neighbors(u) {
                next[v] += config.damping * rank[u] * (w / out_strength[u]);
            }
        }
        let dangling_share = config.damping * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r += dangling_share;
        }
        let diff: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if diff < config.tolerance {
            break;
        }
    }
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), rank[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_returns_empty() {
        let g = WeightedGraph::new_directed();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn scores_sum_to_one() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 2.0);
        g.add_edge(1, 3, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        for id in [1, 2, 3] {
            assert!((pr[&id] - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_receives_more_rank() {
        let mut g = WeightedGraph::new_directed();
        // Everyone points at 1; 1 points at 2.
        for src in [2, 3, 4, 5] {
            g.add_edge(src, 1, 1.0);
        }
        g.add_edge(1, 2, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&1] > pr[&3]);
        assert!(pr[&1] > pr[&2]);
        assert!(pr[&2] > pr[&3], "2 benefits from 1's endorsement");
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0); // 2 is dangling
        g.add_node(3); // isolated & dangling
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weights_steer_rank() {
        let mut g = WeightedGraph::new_directed();
        // 1 links to 2 (weight 9) and to 3 (weight 1).
        g.add_edge(1, 2, 9.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&2] > pr[&3]);
    }

    #[test]
    fn csr_and_hashmap_agree_within_tolerance() {
        let mut g = WeightedGraph::new_directed();
        for (a, b, w) in [
            (1u64, 2u64, 3.0),
            (2, 3, 1.0),
            (3, 1, 2.0),
            (1, 3, 1.0),
            (4, 1, 5.0),
            (5, 5, 2.0), // self-loop
        ] {
            g.add_edge(a, b, w);
        }
        g.add_node(6); // dangling isolate
        let cfg = PageRankConfig::default();
        let csr = pagerank_csr(&g.freeze(), &cfg);
        let reference = pagerank_hashmap(&g, &cfg);
        assert_eq!(csr.len(), reference.len());
        for (id, r) in &reference {
            assert!(
                (csr[id] - r).abs() < 1e-9,
                "node {id}: csr {} vs reference {r}",
                csr[id]
            );
        }
    }

    #[test]
    fn parallel_thread_counts_are_bit_identical() {
        // Large enough that the row space splits into several chunks.
        let mut g = WeightedGraph::new_directed();
        for i in 0..200u64 {
            for j in 1..=5u64 {
                g.add_edge(i, (i * 7 + j * 13) % 200, (1 + (i + j) % 9) as f64);
            }
        }
        g.add_node(9_999); // dangling isolate
        let frozen = g.freeze();
        let serial = pagerank_csr(
            &frozen,
            &PageRankConfig {
                threads: Some(1),
                ..Default::default()
            },
        );
        for t in [2usize, 4, 8] {
            let parallel = pagerank_csr(
                &frozen,
                &PageRankConfig {
                    threads: Some(t),
                    ..Default::default()
                },
            );
            assert_eq!(parallel.len(), serial.len());
            for (id, r) in &serial {
                assert_eq!(
                    parallel[id].to_bits(),
                    r.to_bits(),
                    "node {id} diverged at {t} threads"
                );
            }
        }
    }

    #[test]
    fn permuted_sweep_is_bit_identical_to_natural() {
        let mut g = WeightedGraph::new_directed();
        for i in 0..300u64 {
            for j in 1..=(1 + i % 7) {
                g.add_edge(i, (i * 11 + j * 17) % 300, (1 + (i + j) % 5) as f64);
            }
        }
        g.add_node(8_888); // dangling isolate
        let frozen = g.freeze();
        let permuted = frozen.permute_by_degree(2);
        for t in [1usize, 2, 4] {
            let cfg = PageRankConfig {
                threads: Some(t),
                ..Default::default()
            };
            let natural = pagerank_csr(&frozen, &cfg);
            let mapped = pagerank_permuted(&permuted, &cfg);
            assert_eq!(natural.len(), mapped.len());
            for (id, r) in &natural {
                assert_eq!(
                    mapped[id].to_bits(),
                    r.to_bits(),
                    "node {id} diverged at {t} threads"
                );
            }
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        let cfg = PageRankConfig {
            max_iterations: 1,
            ..Default::default()
        };
        // One iteration must still produce finite, positive scores.
        let pr = pagerank(&g, &cfg);
        assert!(pr.values().all(|v| v.is_finite() && *v > 0.0));
    }
}
