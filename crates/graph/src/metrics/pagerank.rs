//! Weighted PageRank.

use crate::{CsrGraph, NodeId, WeightedGraph};
use std::collections::HashMap;

/// Configuration for [`pagerank`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor, conventionally 0.85.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Weighted PageRank over the graph's (out-)edges.
///
/// Transition probability from `u` to `v` is proportional to the weight of
/// the `u -> v` edge. Dangling nodes (no out-edges) redistribute their mass
/// uniformly. Scores sum to 1 over all nodes. Returns an empty map for an
/// empty graph.
///
/// Freezes the builder once and runs [`pagerank_csr`]; callers that
/// already hold a frozen [`CsrGraph`] should call that directly.
pub fn pagerank(graph: &WeightedGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    pagerank_csr(&graph.freeze(), config)
}

/// Weighted PageRank over a frozen [`CsrGraph`]: each power iteration is a
/// linear sweep over the CSR rows using the cached out-strengths.
pub fn pagerank_csr(graph: &CsrGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    for _ in 0..config.max_iterations {
        next.fill((1.0 - config.damping) * uniform);
        let mut dangling_mass = 0.0;
        for u in 0..n {
            let out_strength = graph.strength(u);
            if out_strength <= 0.0 {
                dangling_mass += rank[u];
                continue;
            }
            let scale = config.damping * rank[u] / out_strength;
            let (targets, weights) = graph.row(u);
            for (&v, &w) in targets.iter().zip(weights) {
                next[v as usize] += scale * w;
            }
        }
        let dangling_share = config.damping * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r += dangling_share;
        }
        let diff: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if diff < config.tolerance {
            break;
        }
    }
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), rank[i]))
        .collect()
}

/// The legacy hash-map-walk PageRank, kept private as the reference for
/// the CSR/builder agreement tests below.
#[cfg(test)]
fn pagerank_hashmap(graph: &WeightedGraph, config: &PageRankConfig) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let out_strength: Vec<f64> = (0..n).map(|i| graph.strength(i)).collect();

    for _ in 0..config.max_iterations {
        let mut next = vec![(1.0 - config.damping) * uniform; n];
        let mut dangling_mass = 0.0;
        for u in 0..n {
            if out_strength[u] <= 0.0 {
                dangling_mass += rank[u];
                continue;
            }
            for (v, w) in graph.neighbors(u) {
                next[v] += config.damping * rank[u] * (w / out_strength[u]);
            }
        }
        let dangling_share = config.damping * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r += dangling_share;
        }
        let diff: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if diff < config.tolerance {
            break;
        }
    }
    (0..n)
        .map(|i| (graph.id_of(i).expect("dense index valid"), rank[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_returns_empty() {
        let g = WeightedGraph::new_directed();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn scores_sum_to_one() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 2.0);
        g.add_edge(1, 3, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        for id in [1, 2, 3] {
            assert!((pr[&id] - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_receives_more_rank() {
        let mut g = WeightedGraph::new_directed();
        // Everyone points at 1; 1 points at 2.
        for src in [2, 3, 4, 5] {
            g.add_edge(src, 1, 1.0);
        }
        g.add_edge(1, 2, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&1] > pr[&3]);
        assert!(pr[&1] > pr[&2]);
        assert!(pr[&2] > pr[&3], "2 benefits from 1's endorsement");
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0); // 2 is dangling
        g.add_node(3); // isolated & dangling
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weights_steer_rank() {
        let mut g = WeightedGraph::new_directed();
        // 1 links to 2 (weight 9) and to 3 (weight 1).
        g.add_edge(1, 2, 9.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(3, 1, 1.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[&2] > pr[&3]);
    }

    #[test]
    fn csr_and_hashmap_agree_within_tolerance() {
        let mut g = WeightedGraph::new_directed();
        for (a, b, w) in [
            (1u64, 2u64, 3.0),
            (2, 3, 1.0),
            (3, 1, 2.0),
            (1, 3, 1.0),
            (4, 1, 5.0),
            (5, 5, 2.0), // self-loop
        ] {
            g.add_edge(a, b, w);
        }
        g.add_node(6); // dangling isolate
        let cfg = PageRankConfig::default();
        let csr = pagerank_csr(&g.freeze(), &cfg);
        let reference = pagerank_hashmap(&g, &cfg);
        assert_eq!(csr.len(), reference.len());
        for (id, r) in &reference {
            assert!(
                (csr[id] - r).abs() < 1e-9,
                "node {id}: csr {} vs reference {r}",
                csr[id]
            );
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        let cfg = PageRankConfig {
            max_iterations: 1,
            ..Default::default()
        };
        // One iteration must still produce finite, positive scores.
        let pr = pagerank(&g, &cfg);
        assert!(pr.values().all(|v| v.is_finite() && *v > 0.0));
    }
}
