//! Local clustering coefficient.

use crate::{CsrGraph, NodeId, WeightedGraph};
use std::collections::HashMap;

/// The (unweighted) local clustering coefficient of every node: the
/// fraction of pairs of a node's neighbours that are themselves connected.
///
/// Self-loops are ignored, as is edge weight — the coefficient describes
/// the *spatial interconnection* of a station's neighbourhood (cf. the
/// related-work metrics in the paper), not traffic volume. Nodes with fewer
/// than two neighbours have a coefficient of 0.
pub fn local_clustering_coefficient(graph: &WeightedGraph) -> HashMap<NodeId, f64> {
    local_clustering_coefficient_csr(&graph.freeze())
}

/// [`local_clustering_coefficient`] over an already-frozen [`CsrGraph`].
///
/// CSR rows are sorted, so counting links among a node's neighbourhood is
/// a merge-style intersection of sorted slices — no hash sets.
pub fn local_clustering_coefficient_csr(graph: &CsrGraph) -> HashMap<NodeId, f64> {
    let n = graph.node_count();
    let mut out = HashMap::with_capacity(n);
    let mut neigh: Vec<u32> = Vec::new();
    for i in 0..n {
        neigh.clear();
        neigh.extend(graph.row(i).0.iter().copied().filter(|&j| j as usize != i));
        let k = neigh.len();
        let coefficient = if k < 2 {
            0.0
        } else {
            let mut links = 0usize;
            for (a, &u) in neigh.iter().enumerate() {
                // Count sorted-intersection of u's row with neigh[a+1..].
                links += sorted_intersection_count(graph.row(u as usize).0, &neigh[a + 1..]);
            }
            2.0 * links as f64 / (k * (k - 1)) as f64
        };
        out.insert(graph.id_of(i).expect("dense index valid"), coefficient);
    }
    out
}

/// Number of values present in both sorted, duplicate-free slices.
fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// The mean local clustering coefficient over all nodes (0 for an empty
/// graph).
pub fn average_clustering_coefficient(graph: &WeightedGraph) -> f64 {
    average_clustering_coefficient_csr(&graph.freeze())
}

/// [`average_clustering_coefficient`] over an already-frozen [`CsrGraph`].
pub fn average_clustering_coefficient_csr(graph: &CsrGraph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    let per_node = local_clustering_coefficient_csr(graph);
    per_node.values().sum::<f64>() / per_node.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_coefficient_one() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(1, 3, 1.0);
        let c = local_clustering_coefficient(&g);
        for id in [1, 2, 3] {
            assert!((c[&id] - 1.0).abs() < 1e-12);
        }
        assert!((average_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_coefficient_zero() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(0, 3, 1.0);
        let c = local_clustering_coefficient(&g);
        assert_eq!(c[&0], 0.0);
        assert_eq!(c[&1], 0.0);
    }

    #[test]
    fn square_with_one_diagonal() {
        // 1-2-3-4-1 plus diagonal 1-3.
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        let c = local_clustering_coefficient(&g);
        // Node 1 has neighbours {2,3,4}; connected pairs among them: (2,3), (3,4) => 2/3.
        assert!((c[&1] - 2.0 / 3.0).abs() < 1e-12);
        // Node 2 has neighbours {1,3}; they are connected => 1.
        assert!((c[&2] - 1.0).abs() < 1e-12);
        // Node 4 has neighbours {1,3}; connected => 1.
        assert!((c[&4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_do_not_count() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 1, 5.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 3, 1.0);
        let c = local_clustering_coefficient(&g);
        assert!((c[&1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_average_is_zero() {
        let g = WeightedGraph::new_undirected();
        assert_eq!(average_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn isolated_and_leaf_nodes_are_zero() {
        let mut g = WeightedGraph::new_undirected();
        g.add_node(7);
        g.add_edge(1, 2, 1.0);
        let c = local_clustering_coefficient(&g);
        assert_eq!(c[&7], 0.0);
        assert_eq!(c[&1], 0.0);
    }
}
