//! Network metrics.
//!
//! The paper and the related work it builds on characterise bike-share
//! networks with a standard battery of descriptors: degree and strength
//! ("the level of activity and connectivity within a given location"),
//! the local clustering coefficient (spatial distribution), centrality
//! measures (betweenness, closeness, PageRank — network stability and
//! prominence), and the Gini coefficient (equity of usage). The station
//! selection algorithm itself (Algorithm 1) only needs degree, but the
//! validation and reporting layers use the rest.

mod assortativity;
mod centrality;
mod clustering;
mod components;
mod degree;
mod gini;
mod pagerank;
mod paths;

pub use assortativity::degree_assortativity;
pub use centrality::{betweenness_centrality, closeness_centrality};
pub use clustering::{average_clustering_coefficient, local_clustering_coefficient};
pub use components::{connected_components, largest_component_size};
pub use degree::{degree_map, strength_map, DegreeSummary};
pub use gini::gini_coefficient;
pub use pagerank::{pagerank, PageRankConfig};
pub use paths::{average_path_length, diameter, global_efficiency, shortest_path_lengths};
