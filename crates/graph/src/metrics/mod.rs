//! Network metrics.
//!
//! The paper and the related work it builds on characterise bike-share
//! networks with a standard battery of descriptors: degree and strength
//! ("the level of activity and connectivity within a given location"),
//! the local clustering coefficient (spatial distribution), centrality
//! measures (betweenness, closeness, PageRank — network stability and
//! prominence), and the Gini coefficient (equity of usage). The station
//! selection algorithm itself (Algorithm 1) only needs degree, but the
//! validation and reporting layers use the rest.
//!
//! Every metric has two entry points: a compatibility wrapper taking the
//! mutable builder [`crate::WeightedGraph`] (which freezes once
//! internally), and a `*_csr` variant consuming an already-frozen
//! [`crate::CsrGraph`] so pipelines that freeze once can share the frozen
//! graph across the whole suite without re-deriving adjacency.

mod assortativity;
mod centrality;
mod clustering;
mod components;
mod degree;
mod gini;
mod pagerank;
mod paths;

pub use assortativity::{degree_assortativity, degree_assortativity_csr};
pub use centrality::{
    betweenness_centrality, betweenness_centrality_csr, closeness_centrality,
    closeness_centrality_csr,
};
pub use clustering::{
    average_clustering_coefficient, average_clustering_coefficient_csr,
    local_clustering_coefficient, local_clustering_coefficient_csr,
};
pub use components::{
    connected_components, connected_components_csr, largest_component_size,
    largest_component_size_csr,
};
pub use degree::{degree_map, degree_map_csr, strength_map, strength_map_csr, DegreeSummary};
pub use gini::gini_coefficient;
pub use pagerank::{pagerank, pagerank_csr, pagerank_permuted, PageRankConfig};
pub use paths::{
    average_path_length, diameter, global_efficiency, shortest_path_lengths,
    shortest_path_lengths_csr,
};
