//! The frozen compressed-sparse-row analytical graph.
//!
//! [`WeightedGraph`] is the *builder*: cheap merged
//! inserts backed by per-node hash maps. Every analytical algorithm pays
//! hash-probe and cache-miss costs when it walks that representation, so
//! the hot layers (Louvain, modularity, PageRank, centrality, clustering,
//! components) instead consume a [`CsrGraph`] produced once by
//! [`WeightedGraph::freeze`](crate::WeightedGraph::freeze):
//!
//! * `offsets` / `targets` / `weights` — the classic CSR triplet; node
//!   `u`'s neighbours are the contiguous slice
//!   `targets[offsets[u]..offsets[u+1]]` (sorted by target index) with
//!   parallel edge weights, so an edge scan is a linear walk over dense
//!   arrays;
//! * an interned dense table mapping external [`NodeId`]s to `u32` indices
//!   (and back via `node_ids`);
//! * cached per-node weighted degrees: `strength` (incident weight, loops
//!   once) and `weighted_degree` (the Louvain convention, loops twice),
//!   plus the self-loop weight, so the community layer never recomputes
//!   them per sweep.
//!
//! Directed graphs additionally carry an in-adjacency CSR (`in_offsets` /
//! `in_targets` / `in_weights`). The freeze step sorts each row, so all
//! iteration — and therefore every floating-point accumulation order
//! downstream — is deterministic regardless of hash-map iteration order in
//! the builder.

use crate::{par, CsrBuilder, NodeId, WeightedGraph};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache-line width (bytes) the adjacency slabs align to.
pub const CACHE_LINE: usize = 64;

/// A read-only array whose data starts on a cache-line boundary.
///
/// The hot CSR sweeps stream `targets`/`weights` linearly; starting each
/// slab on a 64-byte boundary keeps the fixed-width batched loops (see
/// the PageRank pull sweep and the Louvain scan) from straddling an extra
/// line per block and gives the autovectorizer aligned loads to work
/// with. The crate forbids `unsafe`, so alignment is achieved by
/// over-allocating one cache line and exposing the aligned window —
/// [`AlignedSlab::heap_bytes`] reports the *padded* capacity so
/// [`CsrGraph::heap_bytes`] stays honest about the real footprint.
///
/// Equality, hashing-adjacent derives and `Debug` all go through the
/// logical slice, so two slabs with identical contents compare equal even
/// when their allocations landed at different alignments.
pub struct AlignedSlab<T> {
    buf: Vec<T>,
    off: usize,
    len: usize,
}

impl<T: Copy + Default> AlignedSlab<T> {
    /// Elements per cache line (at least 1).
    fn lane_count() -> usize {
        (CACHE_LINE / std::mem::size_of::<T>().max(1)).max(1)
    }

    /// Copy `data` into a freshly aligned slab.
    pub fn from_slice(data: &[T]) -> Self {
        let len = data.len();
        if len == 0 {
            return Self {
                buf: Vec::new(),
                off: 0,
                len: 0,
            };
        }
        let pad = Self::lane_count();
        let mut buf = vec![T::default(); len + pad];
        // `align_offset` may pessimistically refuse (returns usize::MAX);
        // alignment is a pure optimisation, so fall back to offset 0.
        let off = buf.as_ptr().align_offset(CACHE_LINE);
        let off = if off > pad { 0 } else { off };
        buf[off..off + len].copy_from_slice(data);
        Self { buf, off, len }
    }

    /// The logical contents.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Bytes of backing allocation, **including** the alignment padding.
    pub fn heap_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<T>()
    }

    /// Whether the data actually starts on a cache-line boundary (false
    /// only when `align_offset` refused; correctness never depends on it).
    pub fn is_aligned(&self) -> bool {
        self.len == 0 || self.as_slice().as_ptr().align_offset(CACHE_LINE) == 0
    }
}

impl<T: Copy + Default> From<Vec<T>> for AlignedSlab<T> {
    fn from(data: Vec<T>) -> Self {
        Self::from_slice(&data)
    }
}

impl<T: Copy + Default> Default for AlignedSlab<T> {
    fn default() -> Self {
        Self {
            buf: Vec::new(),
            off: 0,
            len: 0,
        }
    }
}

impl<T: Copy + Default> Clone for AlignedSlab<T> {
    fn clone(&self) -> Self {
        // Re-pack instead of cloning the backing buffer: the clone's
        // allocation lands at a different address, so the aligned window
        // must be recomputed around the logical contents.
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy + Default> std::ops::Deref for AlignedSlab<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + std::fmt::Debug> std::fmt::Debug for AlignedSlab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for AlignedSlab<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// The raw arrays of a CSR graph, handed to
/// [`CsrGraph::from_parts`] by construction paths that assemble the
/// adjacency themselves (the freeze path and the columnar
/// [`CsrBuilder`](crate::CsrBuilder)). Rows must already be
/// sorted by target index with duplicates merged.
#[derive(Debug, Clone, Default)]
pub(crate) struct CsrParts {
    /// Whether the graph is directed.
    pub directed: bool,
    /// External node ids in dense-index order.
    pub node_ids: Vec<NodeId>,
    /// Out-row offsets (`n + 1` entries).
    pub offsets: Vec<u32>,
    /// Out-row targets, sorted per row.
    pub targets: Vec<u32>,
    /// Out-row merged weights, parallel to `targets`.
    pub weights: Vec<f64>,
    /// In-row offsets (empty for undirected graphs).
    pub in_offsets: Vec<u32>,
    /// In-row targets (empty for undirected graphs).
    pub in_targets: Vec<u32>,
    /// In-row merged weights (empty for undirected graphs).
    pub in_weights: Vec<f64>,
    /// Number of distinct merged edges (builder convention).
    pub edge_count: usize,
    /// Sum of merged edge weights, each edge counted once.
    pub total_weight: f64,
}

/// The frozen arrays behind a [`CsrGraph`]. Held behind an `Arc` so that
/// cloning a graph — which the serving layer does on every snapshot
/// publish — is a reference-count bump instead of a deep copy of the
/// adjacency slabs. The inner arrays are never mutated after
/// construction, which is what makes the sharing sound.
#[derive(Debug, PartialEq)]
struct CsrInner {
    directed: bool,
    node_ids: Vec<NodeId>,
    index: HashMap<NodeId, u32>,
    offsets: Vec<u32>,
    targets: AlignedSlab<u32>,
    weights: AlignedSlab<f64>,
    in_offsets: Vec<u32>,
    in_targets: AlignedSlab<u32>,
    in_weights: AlignedSlab<f64>,
    strength: Vec<f64>,
    weighted_degree: Vec<f64>,
    self_loops: Vec<f64>,
    edge_count: usize,
    total_weight: f64,
}

/// A frozen, immutable weighted graph in compressed sparse row form.
///
/// Produced by [`WeightedGraph::freeze`](crate::WeightedGraph::freeze);
/// see the [module docs](self) for the representation. The arrays live
/// behind an [`Arc`], so `clone()` is O(1) and clones share storage —
/// [`CsrGraph::shares_storage`] observes the sharing.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    inner: Arc<CsrInner>,
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        // Snapshot clones share storage; skip the deep array compare then.
        Arc::ptr_eq(&self.inner, &other.inner) || *self.inner == *other.inner
    }
}

impl CsrGraph {
    /// Freeze a builder graph. Rows are sorted by target index; per-node
    /// weighted degrees are cached.
    pub fn from_weighted(graph: &WeightedGraph) -> CsrGraph {
        let n = graph.node_count();
        assert!(n <= u32::MAX as usize, "CSR index space is u32");
        let node_ids = graph.node_ids().to_vec();

        let (offsets, targets, weights) = pack_rows(n, |i| graph.neighbors(i));
        let (in_offsets, in_targets, in_weights) = if graph.is_directed() {
            pack_rows(n, |i| graph.in_neighbors(i))
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        CsrGraph::from_parts(
            CsrParts {
                directed: graph.is_directed(),
                node_ids,
                offsets,
                targets,
                weights,
                in_offsets,
                in_targets,
                in_weights,
                edge_count: graph.edge_count(),
                total_weight: graph.total_weight(),
            },
            par::thread_count(None),
        )
    }

    /// Assemble a frozen graph from already-sorted-and-merged CSR arrays.
    /// Shared by [`CsrGraph::from_weighted`] and the columnar
    /// [`CsrBuilder`](crate::CsrBuilder), so both paths intern ids and
    /// cache the per-node weighted degrees through the exact same sweep —
    /// which is what makes the two construction paths bit-identical.
    pub(crate) fn from_parts(parts: CsrParts, threads: usize) -> CsrGraph {
        let CsrParts {
            directed,
            node_ids,
            offsets,
            targets,
            weights,
            in_offsets,
            in_targets,
            in_weights,
            edge_count,
            total_weight,
        } = parts;
        let n = node_ids.len();
        assert!(n <= u32::MAX as usize, "CSR index space is u32");
        debug_assert_eq!(offsets.len(), n + 1);
        let index: HashMap<NodeId, u32> = node_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();

        // Cache the per-node weighted degrees with a parallel row sweep.
        // Each row's accumulation is independent and runs in row order, so
        // the cached values are bit-identical at any thread count.
        let mut strength = vec![0.0f64; n];
        let mut weighted_degree = vec![0.0f64; n];
        let mut self_loops = vec![0.0f64; n];
        {
            let chunks = par::RowChunks::balanced(&offsets, 64, 4096);
            let cached = par::par_map(&chunks, threads, |_, range| {
                let mut out = Vec::with_capacity(range.len());
                for u in range {
                    let (row_t, row_w) = row(&offsets, &targets, &weights, u);
                    let mut s = 0.0f64;
                    let mut wd = 0.0f64;
                    let mut sl = 0.0f64;
                    for (&t, &w) in row_t.iter().zip(row_w) {
                        s += w;
                        if t as usize == u {
                            sl = w;
                            wd += 2.0 * w;
                        } else {
                            wd += w;
                        }
                    }
                    out.push((s, wd, sl));
                }
                out
            });
            let mut u = 0usize;
            for chunk in cached {
                for (s, wd, sl) in chunk {
                    strength[u] = s;
                    weighted_degree[u] = wd;
                    self_loops[u] = sl;
                    u += 1;
                }
            }
        }

        CsrGraph {
            inner: Arc::new(CsrInner {
                directed,
                node_ids,
                index,
                offsets,
                targets: targets.into(),
                weights: weights.into(),
                in_offsets,
                in_targets: in_targets.into(),
                in_weights: in_weights.into(),
                strength,
                weighted_degree,
                self_loops,
                edge_count,
                total_weight,
            }),
        }
    }

    /// Whether two graphs share the same frozen storage (i.e. one is an
    /// O(1) clone of the other). Used by the serving layer's tests to
    /// assert that snapshot publication never deep-copies the slabs.
    pub fn shares_storage(&self, other: &CsrGraph) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.inner.directed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.node_ids.len()
    }

    /// Number of distinct merged edges (same convention as the builder:
    /// undirected edges and self-loops count once).
    pub fn edge_count(&self) -> usize {
        self.inner.edge_count
    }

    /// Sum of all merged edge weights (each edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.inner.total_weight
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.node_ids.is_empty()
    }

    /// Approximate heap footprint of the frozen arrays in bytes: the node
    /// table, the id index, both adjacency halves and the cached degree
    /// sweeps. The `large` bench tier reports this next to peak RSS so
    /// the memory claims of city-scale builds stay auditable. The
    /// adjacency slabs report their **padded** capacity (each aligned
    /// slab over-allocates one cache line; see [`AlignedSlab`]), so the
    /// figure tracks what the allocator really handed out.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.inner.node_ids.capacity() * size_of::<NodeId>()
            + self.inner.index.capacity() * (size_of::<NodeId>() + size_of::<u32>())
            + (self.inner.offsets.capacity() + self.inner.in_offsets.capacity()) * size_of::<u32>()
            + self.inner.targets.heap_bytes()
            + self.inner.in_targets.heap_bytes()
            + self.inner.weights.heap_bytes()
            + self.inner.in_weights.heap_bytes()
            + (self.inner.strength.capacity()
                + self.inner.weighted_degree.capacity()
                + self.inner.self_loops.capacity())
                * size_of::<f64>()
    }

    /// The dense index of an external node id.
    pub fn index_of(&self, id: NodeId) -> Option<u32> {
        self.inner.index.get(&id).copied()
    }

    /// The external node id at a dense index.
    pub fn id_of(&self, index: usize) -> Option<NodeId> {
        self.inner.node_ids.get(index).copied()
    }

    /// All node ids in dense-index order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.inner.node_ids
    }

    /// Whether the node id is present.
    pub fn contains(&self, id: NodeId) -> bool {
        self.inner.index.contains_key(&id)
    }

    /// The (out-)neighbour row of a node: parallel target and weight
    /// slices, sorted by target index. This is the zero-cost access path
    /// for hot loops.
    #[inline]
    pub fn row(&self, u: usize) -> (&[u32], &[f64]) {
        row(
            &self.inner.offsets,
            &self.inner.targets,
            &self.inner.weights,
            u,
        )
    }

    /// The out-row offset array (`n + 1` entries) — the chunking input for
    /// [`par::RowChunks`].
    pub fn offsets(&self) -> &[u32] {
        &self.inner.offsets
    }

    /// The in-row offset array (equals [`CsrGraph::offsets`] for undirected
    /// graphs) — chunk by this when a sweep walks in-rows, e.g. pull-based
    /// PageRank.
    pub fn in_offsets(&self) -> &[u32] {
        if self.inner.directed {
            &self.inner.in_offsets
        } else {
            &self.inner.offsets
        }
    }

    /// The in-neighbour row of a node (equals [`CsrGraph::row`] for
    /// undirected graphs).
    #[inline]
    pub fn in_row(&self, u: usize) -> (&[u32], &[f64]) {
        if self.inner.directed {
            row(
                &self.inner.in_offsets,
                &self.inner.in_targets,
                &self.inner.in_weights,
                u,
            )
        } else {
            self.row(u)
        }
    }

    /// Neighbours (by dense index) with merged weights, sorted by index.
    /// For a directed graph these are out-neighbours.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (t, w) = self.row(u);
        t.iter().zip(w).map(|(&t, &w)| (t as usize, w))
    }

    /// In-neighbours (by dense index) with merged weights.
    pub fn in_neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (t, w) = self.in_row(u);
        t.iter().zip(w).map(|(&t, &w)| (t as usize, w))
    }

    /// Number of distinct (out-)neighbours; self-loops count once.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.inner.offsets[u + 1] - self.inner.offsets[u]) as usize
    }

    /// Cached incident weight (out-edges in a directed graph); self-loops
    /// count once.
    #[inline]
    pub fn strength(&self, u: usize) -> f64 {
        self.inner.strength[u]
    }

    /// Cached weighted degree in the Louvain convention: self-loops count
    /// twice.
    #[inline]
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.inner.weighted_degree[u]
    }

    /// Cached self-loop weight (0.0 when absent).
    #[inline]
    pub fn self_loop(&self, u: usize) -> f64 {
        self.inner.self_loops[u]
    }

    /// Degree of an external node id.
    pub fn degree_of(&self, id: NodeId) -> Option<usize> {
        Some(self.degree(self.index_of(id)? as usize))
    }

    /// Strength of an external node id.
    pub fn strength_of(&self, id: NodeId) -> Option<f64> {
        Some(self.inner.strength[self.index_of(id)? as usize])
    }

    /// The merged weight of the edge from `src` to `dst`, if present
    /// (binary search over the sorted row).
    pub fn edge_weight(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let s = self.index_of(src)? as usize;
        let d = self.index_of(dst)?;
        let (t, w) = self.row(s);
        t.binary_search(&d).ok().map(|pos| w[pos])
    }

    /// Iterate over all merged edges as `(src_id, dst_id, weight)` in
    /// deterministic dense order. Undirected edges are yielded once with
    /// `src_index <= dst_index`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            let (t, w) = self.row(u);
            t.iter().zip(w).filter_map(move |(&v, &w)| {
                if self.inner.directed || u as u32 <= v {
                    Some((self.inner.node_ids[u], self.inner.node_ids[v as usize], w))
                } else {
                    None
                }
            })
        })
    }

    /// The undirected projection: reciprocal directed edges are merged by
    /// summing weights, self-loops carry over. For an undirected graph
    /// this is a clone. Matches
    /// [`WeightedGraph::to_undirected`](crate::WeightedGraph::to_undirected).
    pub fn to_undirected(&self) -> CsrGraph {
        if !self.inner.directed {
            return self.clone();
        }
        let n = self.node_count();
        // Merge out- and in-rows per node: both are sorted, so a two-pointer
        // union yields each undirected neighbour once with the summed weight.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0u32);
        let mut strength = vec![0.0f64; n];
        let mut weighted_degree = vec![0.0f64; n];
        let mut self_loops = vec![0.0f64; n];
        let mut edge_count = 0usize;
        let mut total_weight = 0.0f64;
        for u in 0..n {
            let (ot, ow) = self.row(u);
            let (it, iw) = self.in_row(u);
            let (mut a, mut b) = (0usize, 0usize);
            while a < ot.len() || b < it.len() {
                let (v, w) = if b >= it.len() || (a < ot.len() && ot[a] < it[b]) {
                    let r = (ot[a], ow[a]);
                    a += 1;
                    r
                } else if a >= ot.len() || it[b] < ot[a] {
                    let r = (it[b], iw[b]);
                    b += 1;
                    r
                } else {
                    // Same neighbour in both directions. A self-loop stores
                    // the identical record in out- and in-rows: count once.
                    let r = if ot[a] as usize == u {
                        (ot[a], ow[a])
                    } else {
                        (ot[a], ow[a] + iw[b])
                    };
                    a += 1;
                    b += 1;
                    r
                };
                targets.push(v);
                weights.push(w);
                strength[u] += w;
                if v as usize == u {
                    self_loops[u] = w;
                    weighted_degree[u] += 2.0 * w;
                    edge_count += 1;
                    total_weight += w;
                } else {
                    weighted_degree[u] += w;
                    if (v as usize) > u {
                        edge_count += 1;
                        total_weight += w;
                    }
                }
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            inner: Arc::new(CsrInner {
                directed: false,
                node_ids: self.inner.node_ids.clone(),
                index: self.inner.index.clone(),
                offsets,
                targets: targets.into(),
                weights: weights.into(),
                in_offsets: Vec::new(),
                in_targets: AlignedSlab::default(),
                in_weights: AlignedSlab::default(),
                strength,
                weighted_degree,
                self_loops,
                edge_count,
                total_weight,
            }),
        }
    }

    /// Reorder the node index space by descending degree (ties broken by
    /// the natural index, so the permutation is a pure function of the
    /// row structure). Returns a [`PermutedGraph`]: the frozen permuted
    /// graph plus the forward/inverse maps needed to run the mapped
    /// sweeps and unmap their results.
    ///
    /// Row *positions* are preserved — permuted node `p` carries natural
    /// node `perm[p]`'s row with every entry in its original position,
    /// values translated into permuted index space. Positional fold order
    /// is therefore identical to the natural graph's, which is what lets
    /// the mapped PageRank/Louvain/modularity paths reproduce the
    /// natural-order results bit for bit (see DESIGN.md, "Layout &
    /// vectorization").
    pub fn permute_by_degree(&self, threads: usize) -> PermutedGraph {
        let n = self.node_count();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by_key(|&u| (std::cmp::Reverse(self.degree(u as usize)), u));
        let mut inv = vec![0u32; n];
        for (p, &u) in perm.iter().enumerate() {
            inv[u as usize] = p as u32;
        }

        let permuted_parts = |offsets: &[u32], targets: &[u32], weights: &[f64]| {
            let mut new_offsets = Vec::with_capacity(n + 1);
            new_offsets.push(0u32);
            let mut new_targets = Vec::with_capacity(targets.len());
            let mut new_weights = Vec::with_capacity(weights.len());
            for &u in &perm {
                let (t, w) = row(offsets, targets, weights, u as usize);
                // Keep the source position order: mapping values through
                // `inv` changes *what* each entry points at, never the
                // per-row accumulation order.
                new_targets.extend(t.iter().map(|&v| inv[v as usize]));
                new_weights.extend_from_slice(w);
                new_offsets.push(new_targets.len() as u32);
            }
            (new_offsets, new_targets, new_weights)
        };

        let (offsets, targets, weights) = permuted_parts(
            &self.inner.offsets,
            &self.inner.targets,
            &self.inner.weights,
        );
        let (in_offsets, in_targets, in_weights) = if self.inner.directed {
            permuted_parts(
                &self.inner.in_offsets,
                &self.inner.in_targets,
                &self.inner.in_weights,
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let node_ids = perm
            .iter()
            .map(|&u| self.inner.node_ids[u as usize])
            .collect::<Vec<_>>();
        let graph = CsrGraph::from_parts(
            CsrParts {
                directed: self.inner.directed,
                node_ids,
                offsets,
                targets,
                weights,
                in_offsets,
                in_targets,
                in_weights,
                edge_count: self.inner.edge_count,
                total_weight: self.inner.total_weight,
            },
            threads,
        );
        PermutedGraph {
            graph,
            perm,
            inv,
            natural_offsets: self.inner.offsets.clone(),
        }
    }

    /// A frozen graph containing only the nodes for which `keep` returns
    /// true (and the merged edges among them), preserving the relative
    /// dense order of the kept nodes. Matches
    /// [`WeightedGraph::subgraph`](crate::WeightedGraph::subgraph) followed
    /// by a freeze.
    pub fn subgraph<F: Fn(NodeId) -> bool>(&self, keep: F) -> CsrGraph {
        let mut builder = if self.inner.directed {
            CsrBuilder::directed()
        } else {
            CsrBuilder::undirected()
        };
        builder.seed_nodes(self.inner.node_ids.iter().copied().filter(|&id| keep(id)));
        for (src, dst, w) in self.edges() {
            if keep(src) && keep(dst) {
                builder.push(src, dst, w);
            }
        }
        builder.build()
    }
}

/// A degree-sorted reordering of a [`CsrGraph`], produced by
/// [`CsrGraph::permute_by_degree`].
///
/// Permuted position `p` carries natural node `perm()[p]`; natural node
/// `u` lives at permuted position `inv()[u]`. The inner graph is a fully
/// interned frozen graph over the same external [`NodeId`]s, so id-keyed
/// results (e.g. a PageRank `HashMap<NodeId, f64>`) need no unmapping at
/// all — only dense-index artefacts (memberships, per-node vectors) go
/// through `perm`/`inv`.
///
/// **Sweep-only representation**: rows preserve the *source* position
/// order rather than being re-sorted by permuted target index, because
/// positional fold order is what keeps the mapped kernels bit-identical
/// to the natural run. Anything that needs sorted rows
/// ([`CsrGraph::edge_weight`]'s binary search, the sort-merge delta
/// paths) must use the natural graph instead.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutedGraph {
    graph: CsrGraph,
    perm: Vec<u32>,
    inv: Vec<u32>,
    natural_offsets: Vec<u32>,
}

impl PermutedGraph {
    /// The frozen permuted graph (see the type docs for the row-order
    /// caveat).
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// `perm()[p]` is the natural index stored at permuted position `p`.
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// `inv()[u]` is the permuted position of natural node `u`.
    #[inline]
    pub fn inv(&self) -> &[u32] {
        &self.inv
    }

    /// The natural graph's out-offset array. Mapped passes whose chunk
    /// boundaries are part of the determinism contract (modularity
    /// tallies) chunk over these, not the permuted offsets.
    #[inline]
    pub fn natural_offsets(&self) -> &[u32] {
        &self.natural_offsets
    }

    /// Number of nodes (same as the natural graph).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.perm.len()
    }

    /// The row of *natural* node `u` in the permuted layout: targets are
    /// permuted indices, positions match the natural row.
    #[inline]
    pub fn natural_row(&self, u: usize) -> (&[u32], &[f64]) {
        self.graph.row(self.inv[u] as usize)
    }

    /// Heap footprint: the permuted graph plus both permutation maps and
    /// the retained natural offsets — counted so the `large` bench's RSS
    /// vs heap comparison stays honest when the pipeline holds a
    /// permuted copy.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.graph.heap_bytes()
            + (self.perm.capacity() + self.inv.capacity() + self.natural_offsets.capacity())
                * size_of::<u32>()
    }
}

/// Collect per-node `(neighbour, weight)` pairs into sorted CSR arrays.
fn pack_rows<I, F>(n: usize, mut neighbors: F) -> (Vec<u32>, Vec<u32>, Vec<f64>)
where
    I: Iterator<Item = (usize, f64)>,
    F: FnMut(usize) -> I,
{
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    for u in 0..n {
        scratch.clear();
        scratch.extend(neighbors(u).map(|(v, w)| (v as u32, w)));
        scratch.sort_unstable_by_key(|&(v, _)| v);
        for &(v, w) in &scratch {
            targets.push(v);
            weights.push(w);
        }
        offsets.push(targets.len() as u32);
    }
    (offsets, targets, weights)
}

#[inline]
fn row<'a>(
    offsets: &[u32],
    targets: &'a [u32],
    weights: &'a [f64],
    u: usize,
) -> (&'a [u32], &'a [f64]) {
    let lo = offsets[u] as usize;
    let hi = offsets[u + 1] as usize;
    (&targets[lo..hi], &weights[lo..hi])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_undirected() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(10, 20, 3.0);
        g.add_edge(20, 30, 1.0);
        g.add_edge(10, 20, 2.0); // merges
        g.add_edge(40, 40, 5.0); // self-loop
        g.add_node(99); // isolated
        g
    }

    #[test]
    fn freeze_preserves_counts_and_weights() {
        let g = sample_undirected();
        let c = g.freeze();
        assert!(!c.is_directed());
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(c.total_weight(), g.total_weight());
        assert_eq!(c.edge_weight(10, 20), Some(5.0));
        assert_eq!(c.edge_weight(20, 10), Some(5.0));
        assert_eq!(c.edge_weight(10, 30), None);
        assert_eq!(c.self_loop(c.index_of(40).unwrap() as usize), 5.0);
    }

    #[test]
    fn heap_bytes_tracks_graph_size() {
        let small = sample_undirected().freeze();
        assert!(small.heap_bytes() > 0);
        let mut g = WeightedGraph::new_directed();
        for i in 0..200u64 {
            g.add_edge(i, (i * 7) % 200, 1.0);
        }
        let big = g.freeze();
        assert!(big.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn rows_are_sorted_and_complete() {
        let g = sample_undirected();
        let c = g.freeze();
        for u in 0..c.node_count() {
            let (t, w) = c.row(u);
            assert_eq!(t.len(), w.len());
            assert!(t.windows(2).all(|p| p[0] < p[1]), "row {u} sorted, unique");
            assert_eq!(c.degree(u), g.degree(u));
        }
    }

    #[test]
    fn cached_degrees_match_builder() {
        let g = sample_undirected();
        let c = g.freeze();
        for (u, &id) in c.node_ids().iter().enumerate() {
            assert_eq!(c.strength(u), g.strength(u), "strength of {id}");
            let expected_wd = g.strength(u) + g.self_loop_weight(id);
            assert!((c.weighted_degree(u) - expected_wd).abs() < 1e-12);
        }
        assert_eq!(c.strength_of(99), Some(0.0));
        assert_eq!(c.degree_of(99), Some(0));
        assert_eq!(c.strength_of(12345), None);
    }

    #[test]
    fn id_interning_round_trips() {
        let g = sample_undirected();
        let c = g.freeze();
        for &id in g.node_ids() {
            let u = c.index_of(id).unwrap() as usize;
            assert_eq!(c.id_of(u), Some(id));
            assert_eq!(u, g.index_of(id).unwrap());
        }
        assert!(c.contains(99));
        assert!(!c.contains(1));
        assert_eq!(c.index_of(1), None);
        assert_eq!(c.id_of(1000), None);
    }

    #[test]
    fn directed_freeze_has_in_rows() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(3, 2, 2.0);
        g.add_edge(2, 1, 1.0);
        let c = g.freeze();
        assert!(c.is_directed());
        let i2 = c.index_of(2).unwrap() as usize;
        assert_eq!(c.degree(i2), 1);
        assert_eq!(c.strength(i2), 1.0);
        let in_sum: f64 = c.in_neighbors(i2).map(|(_, w)| w).sum();
        assert_eq!(in_sum, 5.0);
        assert_eq!(c.in_row(i2).0.len(), 2);
    }

    #[test]
    fn edges_iterator_matches_builder() {
        let g = sample_undirected();
        let c = g.freeze();
        let mut got: Vec<_> = c.edges().collect();
        let mut want = g.edges();
        got.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
        want.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn directed_edges_iterator_yields_all() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(3, 3, 2.0);
        let c = g.freeze();
        assert_eq!(c.edges().count(), 3);
    }

    #[test]
    fn to_undirected_matches_builder_projection() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 1, 2.0);
        g.add_edge(3, 3, 5.0);
        g.add_edge(1, 3, 1.0);
        let via_builder = g.to_undirected().freeze();
        let via_csr = g.freeze().to_undirected();
        assert_eq!(via_csr.node_count(), via_builder.node_count());
        assert_eq!(via_csr.edge_count(), via_builder.edge_count());
        assert!((via_csr.total_weight() - via_builder.total_weight()).abs() < 1e-12);
        for (&id, u) in via_builder.node_ids().iter().zip(0..) {
            assert_eq!(via_csr.id_of(u), Some(id));
            assert!((via_csr.strength(u) - via_builder.strength(u)).abs() < 1e-12);
        }
        assert_eq!(via_csr.edge_weight(1, 2), Some(5.0));
        assert_eq!(via_csr.edge_weight(3, 3), Some(5.0));
    }

    #[test]
    fn empty_graph_freezes() {
        let c = WeightedGraph::new_undirected().freeze();
        assert!(c.is_empty());
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.edges().count(), 0);
    }

    #[test]
    fn aligned_slab_round_trips_and_aligns() {
        let data: Vec<u32> = (0..1000).collect();
        let slab = AlignedSlab::from_slice(&data);
        assert_eq!(slab.as_slice(), &data[..]);
        assert!(slab.is_aligned(), "u32 slab starts on a cache line");
        assert!(slab.heap_bytes() >= 1000 * 4, "padding counted");

        let f: Vec<f64> = (0..77).map(|i| i as f64 * 0.5).collect();
        let fslab: AlignedSlab<f64> = f.clone().into();
        assert_eq!(&*fslab, &f[..]);
        assert!(fslab.is_aligned());

        // Clone re-packs around a fresh allocation but compares equal.
        let copy = slab.clone();
        assert_eq!(copy, slab);
        assert!(copy.is_aligned());

        let empty = AlignedSlab::<f64>::default();
        assert!(empty.as_slice().is_empty());
        assert!(empty.is_aligned());
        assert_eq!(empty.heap_bytes(), 0);
    }

    #[test]
    fn permute_by_degree_orders_hubs_first() {
        let g = sample_undirected();
        let c = g.freeze();
        let p = c.permute_by_degree(1);
        let n = c.node_count();
        assert_eq!(p.node_count(), n);
        // Degrees are non-increasing along the permuted index space.
        let degs: Vec<usize> = (0..n).map(|q| p.graph().degree(q)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degree-sorted");
        // perm/inv invert each other.
        for u in 0..n {
            assert_eq!(p.perm()[p.inv()[u] as usize] as usize, u);
        }
        assert_eq!(p.natural_offsets(), c.offsets());
    }

    #[test]
    fn permuted_graph_is_isomorphic_with_identical_cached_degrees() {
        let mut g = WeightedGraph::new_undirected();
        for i in 0..40u64 {
            g.add_edge(i, (i * 3) % 40, 1.0 + i as f64 * 0.25);
            g.add_edge(i, (i + 1) % 40, 0.5);
        }
        let c = g.freeze();
        let p = c.permute_by_degree(2);
        let pg = p.graph();
        assert_eq!(pg.edge_count(), c.edge_count());
        assert_eq!(pg.total_weight().to_bits(), c.total_weight().to_bits());
        for u in 0..c.node_count() {
            let q = p.inv()[u] as usize;
            assert_eq!(pg.id_of(q), c.id_of(u), "same external id");
            // Cached degree sweeps are positional folds over the same row
            // contents, so they are bit-identical, not just close.
            assert_eq!(pg.strength(q).to_bits(), c.strength(u).to_bits());
            assert_eq!(
                pg.weighted_degree(q).to_bits(),
                c.weighted_degree(u).to_bits()
            );
            assert_eq!(pg.self_loop(q).to_bits(), c.self_loop(u).to_bits());
            // Rows carry the same (neighbour, weight) multiset with
            // positions preserved and values mapped through `inv`.
            let (nt, nw) = c.row(u);
            let (pt, pw) = p.natural_row(u);
            assert_eq!(nw, pw, "weights keep source positions");
            let mapped: Vec<u32> = nt.iter().map(|&v| p.inv()[v as usize]).collect();
            assert_eq!(pt, &mapped[..], "targets mapped positionally");
        }
        // heap_bytes includes the permutation maps on top of the graph.
        assert!(p.heap_bytes() > pg.heap_bytes());
        assert!(p.heap_bytes() >= pg.heap_bytes() + 3 * c.node_count() * 4);
    }

    #[test]
    fn permuted_directed_graph_keeps_in_rows() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(3, 2, 2.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(2, 2, 4.0);
        let c = g.freeze();
        let p = c.permute_by_degree(1);
        let i2 = c.index_of(2).unwrap() as usize;
        let q2 = p.inv()[i2] as usize;
        let (nt, nw) = c.in_row(i2);
        let (pt, pw) = p.graph().in_row(q2);
        assert_eq!(nw, pw);
        let mapped: Vec<u32> = nt.iter().map(|&v| p.inv()[v as usize]).collect();
        assert_eq!(pt, &mapped[..]);
    }
}
