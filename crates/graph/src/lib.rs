//! # moby-graph
//!
//! An in-memory property-graph store and network-metrics suite.
//!
//! The paper stores its trip networks in Neo4j and runs the Graph Data
//! Science library on top of it. This crate is the Rust substrate that
//! replaces that stack for the reproduction:
//!
//! * [`GraphStore`] — a labelled property graph (nodes and relationships
//!   carrying typed key/value properties), the analogue of the Neo4j store
//!   that holds `Station` nodes and `TRIP` relationships;
//! * [`WeightedGraph`] — the mutable *builder* graph: merged weighted-edge
//!   inserts over per-node hash maps. Since the columnar path landed this
//!   is the compatibility / equivalence baseline, not the hot path;
//! * [`CsrGraph`] — the frozen compressed-sparse-row projection; every
//!   analytical algorithm (degree/strength, Louvain, centrality) runs on
//!   this cache-friendly representation;
//! * [`EdgeList`] / [`CsrBuilder`] — the columnar **sort-merge
//!   construction** path: `(src, dst, weight)` triples become a frozen
//!   [`CsrGraph`] directly (sort by row/target + adjacent-duplicate
//!   merge, parallelised on [`par`]), producing bit-for-bit the graph
//!   [`WeightedGraph::freeze`] would have built — with zero per-edge hash
//!   operations;
//! * [`CsrDelta`] / [`CsrGraph::apply_delta`] — **incremental updates**:
//!   an edge batch merges into an existing frozen graph row by row,
//!   producing a graph bit-identical to rebuilding from the concatenated
//!   edge list (see [`delta`] for the contract) — the streaming-ingestion
//!   path;
//! * [`CsrEvict`] / [`CsrGraph::apply_evict`] — the **removal arm**: a
//!   sliding window drops expired edges from a frozen graph, producing a
//!   graph bit-identical to rebuilding from the surviving edge list (see
//!   [`evict`] for why subtraction re-folds instead of continuing the
//!   stored fold);
//! * [`aggregate`] — the multi-edge → weighted-edge aggregation used to
//!   build `GBasic`, `GDay` and `GHour` from raw trip relationships;
//! * [`par`] — the deterministic parallel scheduler: edge-balanced
//!   contiguous row chunks over CSR offsets, scoped-thread execution with a
//!   fixed chunk-merge order, and `MOBY_THREADS` thread-count resolution.
//!   Results are bit-identical at any thread count; see the module docs for
//!   the contract;
//! * [`metrics`] — degree, strength, local clustering coefficient,
//!   betweenness, closeness, PageRank, connected components and the Gini
//!   coefficient, the network descriptors referenced in the paper's related
//!   work and used for validation;
//! * [`export`] — DOT / CSV / GeoJSON emission for the paper's figures.
//!
//! ## Example
//!
//! ```
//! use moby_graph::WeightedGraph;
//!
//! let mut g = WeightedGraph::new_undirected();
//! g.add_edge(1, 2, 3.0);
//! g.add_edge(2, 3, 1.0);
//! g.add_edge(1, 2, 2.0); // parallel edges merge their weights
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.strength_of(1), Some(5.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod build;
pub mod csr;
pub mod delta;
pub mod evict;
pub mod export;
mod graph;
pub mod metrics;
pub mod par;
pub mod spill;
mod store;
mod value;

pub use build::{
    build_dense_csr, build_dense_csr_budgeted, build_dense_csr_sharded, build_dense_csr_spilled,
    CsrBuilder, EdgeList,
};
pub use csr::{AlignedSlab, CsrGraph, PermutedGraph, CACHE_LINE};
pub use delta::CsrDelta;
pub use evict::CsrEvict;
pub use graph::{NodeId, WeightedGraph};
pub use store::{EdgeRecord, GraphStore, NodeRecord};
pub use value::{props, PropMap, PropValue};

use std::fmt;

/// Errors produced by graph operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A referenced node does not exist in the store/graph.
    MissingNode(NodeId),
    /// An edge endpoint referenced a node that was never added.
    DanglingEdge {
        /// Source node id.
        src: NodeId,
        /// Destination node id.
        dst: NodeId,
    },
    /// An edge weight was non-finite or negative.
    InvalidWeight(f64),
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// The operation is only defined for the other directedness.
    WrongDirectedness {
        /// Whether the graph the operation was invoked on is directed.
        directed: bool,
    },
    /// A spill-to-disk construction run failed on I/O (temp dir not
    /// writable, disk full, a run vanished mid-merge). Carries the
    /// rendered context + OS error, since `std::io::Error` is neither
    /// `Clone` nor `PartialEq`.
    Spill(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingNode(id) => write!(f, "node {id} does not exist"),
            GraphError::DanglingEdge { src, dst } => {
                write!(f, "edge {src} -> {dst} references a missing node")
            }
            GraphError::InvalidWeight(w) => {
                write!(
                    f,
                    "invalid edge weight {w}: must be finite and non-negative"
                )
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::WrongDirectedness { directed } => write!(
                f,
                "operation not defined for a {} graph",
                if *directed { "directed" } else { "undirected" }
            ),
            GraphError::Spill(msg) => write!(f, "spill I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(GraphError::MissingNode(4).to_string().contains('4'));
        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
        assert!(GraphError::InvalidWeight(-1.0).to_string().contains("-1"));
        assert!(GraphError::DanglingEdge { src: 1, dst: 2 }
            .to_string()
            .contains("->"));
        assert!(GraphError::WrongDirectedness { directed: true }
            .to_string()
            .contains("directed"));
        assert!(GraphError::Spill("disk full".into())
            .to_string()
            .contains("disk full"));
    }
}
