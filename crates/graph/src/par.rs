//! Deterministic parallel execution over CSR row ranges.
//!
//! Every hot algorithm in this workspace sweeps the contiguous rows of a
//! frozen [`CsrGraph`](crate::CsrGraph). This module is the shared scheduler
//! those sweeps run on: it splits the row space `0..n` into contiguous
//! chunks, executes one closure per chunk on scoped `std` threads, and hands
//! the per-chunk results back **in chunk-index order** so any fold over them
//! is a fixed-order reduction.
//!
//! ## The determinism contract
//!
//! Results are **bit-identical regardless of the worker-thread count**.
//! Two rules make that hold, and every caller in the workspace relies on
//! them:
//!
//! 1. **Chunk boundaries are a pure function of the row structure.**
//!    [`RowChunks`] is computed from the CSR offsets (balanced by edge
//!    count) or from the row count alone — never from the thread count.
//!    Thread count only decides *which worker executes which chunk*, and a
//!    chunk's output does not depend on the worker that ran it.
//! 2. **Merges happen in chunk-index order.** [`par_map`] and friends
//!    return the per-chunk results as a `Vec` indexed by chunk, so
//!    floating-point reductions over them associate the same way every
//!    run. A single-threaded run uses the *same* chunk decomposition and
//!    merge order, which is why the serial `*_csr` entry points are exactly
//!    the 1-thread specialisation of the parallel ones.
//!
//! ## Thread-count resolution
//!
//! [`thread_count`] resolves, in order: an explicit override (the
//! `threads` field most algorithm configs carry), the `MOBY_THREADS`
//! environment variable, and finally
//! [`std::thread::available_parallelism`]. The result is clamped to
//! `1..=`[`MAX_THREADS`]. `MOBY_THREADS=0` or an unparsable value falls
//! through to auto-detection. Because of the contract above, changing the
//! thread count never changes a result — only how fast it arrives.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Hard ceiling on the number of worker threads.
pub const MAX_THREADS: usize = 64;

/// Environment variable consulted by [`thread_count`] when no explicit
/// override is given.
pub const THREADS_ENV: &str = "MOBY_THREADS";

/// Hard ceiling on the number of construction shards.
pub const MAX_SHARDS: usize = 256;

/// Environment variable consulted by [`shard_count`] when no explicit
/// override is given.
pub const SHARDS_ENV: &str = "MOBY_SHARDS";

/// Default maximum number of chunks a row space is split into.
const DEFAULT_MAX_CHUNKS: usize = 64;

/// Default minimum work (rows + edges) per chunk; row spaces smaller than
/// twice this collapse into fewer chunks so tiny graphs never pay
/// scheduling overhead.
const DEFAULT_MIN_CHUNK_WORK: usize = 256;

/// Resolve the worker-thread count: `explicit` override, then the
/// [`THREADS_ENV`] environment variable, then
/// [`std::thread::available_parallelism`]; clamped to `1..=`[`MAX_THREADS`].
pub fn thread_count(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| parse_threads(std::env::var(THREADS_ENV).ok().as_deref()))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS)
}

/// Parse a [`THREADS_ENV`] value; `0`, empty or garbage mean "auto".
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Resolve the construction shard count: `explicit` override, then the
/// [`SHARDS_ENV`] environment variable, then `1` (unsharded); clamped to
/// `1..=`[`MAX_SHARDS`].
///
/// Sharding is the row-space analogue of [`thread_count`]: shard
/// boundaries are a pure function of the row structure and the shard
/// count, and shard outputs concatenate in shard order, so the sharded
/// CSR build is **bit-identical at any shard count** (see
/// `crate::build`'s contract). The knob only tunes the parallelism of
/// the scatter pass and the peak size of the per-shard scatter buffers.
pub fn shard_count(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| parse_threads(std::env::var(SHARDS_ENV).ok().as_deref()))
        .unwrap_or(1)
        .clamp(1, MAX_SHARDS)
}

/// A deterministic partition of the row space `0..n` into contiguous
/// chunks, balanced by per-row work (1 + the row's edge count when built
/// [`from_offsets`](RowChunks::from_offsets)).
///
/// The decomposition depends only on the row structure and the explicit
/// `max_chunks` / `min_chunk_work` arguments — **never on the thread
/// count** — which is what makes every scheduler result reproducible at
/// any parallelism (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowChunks {
    ranges: Vec<Range<usize>>,
    rows: usize,
}

impl RowChunks {
    /// Edge-balanced chunks over a CSR offset array (`offsets.len() == n+1`)
    /// with the default chunk budget.
    pub fn from_offsets(offsets: &[u32]) -> RowChunks {
        RowChunks::balanced(offsets, DEFAULT_MAX_CHUNKS, DEFAULT_MIN_CHUNK_WORK)
    }

    /// Edge-balanced chunks over a CSR offset array with an explicit chunk
    /// budget: at most `max_chunks` chunks, each carrying at least
    /// `min_chunk_work` units of work (a row costs `1 +` its edge count)
    /// where possible.
    pub fn balanced(offsets: &[u32], max_chunks: usize, min_chunk_work: usize) -> RowChunks {
        let n = offsets.len().saturating_sub(1);
        let row_work = |u: usize| 1 + (offsets[u + 1] - offsets[u]) as usize;
        let total = n + offsets.last().map(|&e| e as usize).unwrap_or(0);
        let target_chunks = (total / min_chunk_work.max(1)).clamp(1, max_chunks.max(1));
        let mut ranges = Vec::with_capacity(target_chunks);
        let mut start = 0usize;
        let mut work_left = total;
        while start < n {
            let chunks_left = target_chunks - ranges.len();
            if chunks_left <= 1 {
                ranges.push(start..n);
                break;
            }
            let target = work_left.div_ceil(chunks_left);
            let mut end = start;
            let mut acc = 0usize;
            while end < n && (acc < target || end == start) {
                acc += row_work(end);
                end += 1;
            }
            work_left -= acc;
            ranges.push(start..end);
            start = end;
        }
        RowChunks { ranges, rows: n }
    }

    /// Row-count-balanced chunks for sweeps whose per-row cost is not
    /// proportional to the row length (e.g. one shortest-path tree per
    /// source node): at most `max_chunks` equal-sized contiguous ranges.
    pub fn uniform(n: usize, max_chunks: usize) -> RowChunks {
        let chunks = max_chunks.max(1).min(n.max(1));
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0usize;
        for c in 0..chunks {
            let end = n * (c + 1) / chunks;
            if end > start {
                ranges.push(start..end);
                start = end;
            }
        }
        RowChunks { ranges, rows: n }
    }

    /// The chunk ranges, contiguous and covering `0..rows` in order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the row space is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of rows covered (`n`).
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// Run `f` once per chunk across up to `threads` scoped workers and return
/// the per-chunk results **in chunk-index order**. `make_state` builds one
/// scratch state per worker (allocated once, reused across that worker's
/// chunks). With `threads <= 1` (or a single chunk) everything runs inline
/// on the calling thread — same chunks, same merge order, same bits.
pub fn par_map_with<S, R, M, F>(chunks: &RowChunks, threads: usize, make_state: M, f: F) -> Vec<R>
where
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> R + Sync,
{
    let ranges = chunks.ranges();
    let threads = threads.clamp(1, MAX_THREADS).min(ranges.len().max(1));
    if threads <= 1 {
        let mut state = make_state();
        return ranges
            .iter()
            .enumerate()
            .map(|(i, r)| f(&mut state, i, r.clone()))
            .collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(ranges.len());
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let make_state = &make_state;
                scope.spawn(move || {
                    let mut state = make_state();
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < ranges.len() {
                        out.push((i, f(&mut state, i, ranges[i].clone())));
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("scheduler worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk executed"))
        .collect()
}

/// [`par_map_with`] without per-worker state.
pub fn par_map<R, F>(chunks: &RowChunks, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    par_map_with(chunks, threads, || (), move |_, i, r| f(i, r))
}

/// Fill `out` (one element per row) in parallel: chunk `i` receives the
/// exclusive sub-slice `out[ranges[i]]`, so writes are disjoint by
/// construction and no synchronisation is needed. Returns the per-chunk
/// closure results in chunk-index order (use them for fixed-order
/// reductions computed alongside the fill, e.g. a convergence norm).
pub fn par_fill_with<T, S, R, M, F>(
    chunks: &RowChunks,
    threads: usize,
    out: &mut [T],
    make_state: M,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>, &mut [T]) -> R + Sync,
{
    assert_eq!(
        out.len(),
        chunks.rows(),
        "par_fill output length must equal the chunked row count"
    );
    let ranges = chunks.ranges();
    let threads = threads.clamp(1, MAX_THREADS).min(ranges.len().max(1));
    if threads <= 1 {
        let mut state = make_state();
        return ranges
            .iter()
            .enumerate()
            .map(|(i, r)| f(&mut state, i, r.clone(), &mut out[r.clone()]))
            .collect();
    }
    // Split `out` into per-chunk slices (ranges are contiguous and cover
    // 0..n) and deal them round-robin to the workers.
    let mut slices: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for (i, r) in ranges.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(r.end - r.start);
        slices.push((i, head));
        rest = tail;
    }
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (pos, slice) in slices.into_iter().enumerate() {
        per_worker[pos % threads].push(slice);
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(ranges.len());
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|mine| {
                let f = &f;
                let make_state = &make_state;
                scope.spawn(move || {
                    let mut state = make_state();
                    mine.into_iter()
                        .map(|(i, slice)| (i, f(&mut state, i, ranges[i].clone(), slice)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("scheduler worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk executed"))
        .collect()
}

/// [`par_fill_with`] without per-worker state.
pub fn par_fill<T, R, F>(chunks: &RowChunks, threads: usize, out: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, Range<usize>, &mut [T]) -> R + Sync,
{
    par_fill_with(chunks, threads, out, || (), move |_, i, r, s| f(i, r, s))
}

/// A shared `f64` buffer for iterative sweeps ([`par_iterate`]): plain
/// `f64` bits stored in relaxed atomics, so concurrent workers can read the
/// whole buffer while each writes only its own rows. Relaxed ordering is
/// sufficient because [`par_iterate`]'s barriers separate every iteration's
/// writes from the next iteration's reads (a relaxed load/store compiles to
/// a plain move on the usual targets, so this costs nothing over `Vec<f64>`).
pub struct SharedF64Buf(Vec<AtomicU64>);

impl SharedF64Buf {
    /// A buffer of `n` slots, all holding `value`.
    pub fn new(n: usize, value: f64) -> SharedF64Buf {
        SharedF64Buf((0..n).map(|_| AtomicU64::new(value.to_bits())).collect())
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer has no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Read slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    /// Write slot `i`.
    #[inline]
    pub fn set(&self, i: usize, value: f64) {
        self.0[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Copy the buffer out as a plain vector.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Run repeated whole-row sweeps on a **persistent** pool of scoped
/// workers — the driver for power-iteration-style algorithms (PageRank)
/// where spawning threads per iteration would dominate the sweep cost.
///
/// Iteration `k` proceeds as: every chunk executes `sweep(k, chunk, rows)`
/// concurrently (workers hold a fixed round-robin chunk assignment); once
/// all chunks finish, `control(k)` runs alone on the calling thread while
/// the workers wait — this quiescent window is where the caller reduces
/// per-chunk results (in chunk order!), checks convergence and prepares
/// shared state (e.g. [`SharedF64Buf`] buffers) for iteration `k + 1`.
/// Returning `false` from `control` ends the loop.
///
/// Workers are spawned once and synchronised with two barriers per
/// iteration. With `threads <= 1` (or a single chunk) the loop runs inline
/// with no threads and no barriers — same chunks, same merge order, same
/// bits, per the module's determinism contract.
pub fn par_iterate<F, G>(chunks: &RowChunks, threads: usize, sweep: F, mut control: G)
where
    F: Fn(u64, usize, Range<usize>) + Sync,
    G: FnMut(u64) -> bool,
{
    let ranges = chunks.ranges();
    let threads = threads.clamp(1, MAX_THREADS).min(ranges.len().max(1));
    if threads <= 1 {
        let mut k = 0u64;
        loop {
            for (i, r) in ranges.iter().enumerate() {
                sweep(k, i, r.clone());
            }
            if !control(k) {
                return;
            }
            k += 1;
        }
    }
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let sweep = &sweep;
            let stop = &stop;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut k = 0u64;
                loop {
                    barrier.wait(); // start gate: iteration k begins
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let mut i = t;
                    while i < ranges.len() {
                        sweep(k, i, ranges[i].clone());
                        i += threads;
                    }
                    barrier.wait(); // end gate: iteration k complete
                    k += 1;
                }
            });
        }
        let mut k = 0u64;
        loop {
            barrier.wait(); // release workers into iteration k
            barrier.wait(); // all chunks of iteration k done
                            // Quiescent window: workers are parked at the next start gate,
                            // so `control` has exclusive access to shared state.
            if !control(k) {
                stop.store(true, Ordering::Release);
                barrier.wait(); // release workers to observe `stop`
                break;
            }
            k += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Offsets of a graph whose row u has u % 7 edges.
    fn offsets(n: usize) -> Vec<u32> {
        let mut o = Vec::with_capacity(n + 1);
        o.push(0u32);
        for u in 0..n {
            o.push(o[u] + (u % 7) as u32);
        }
        o
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(thread_count(Some(3)), 3);
        assert_eq!(thread_count(Some(10_000)), MAX_THREADS);
        assert!(thread_count(None) >= 1);
        // Explicit 0 falls through to auto.
        assert!(thread_count(Some(0)) >= 1);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("auto")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn shard_count_resolution() {
        assert_eq!(shard_count(Some(4)), 4);
        assert_eq!(shard_count(Some(100_000)), MAX_SHARDS);
        // Explicit 0 falls through to the default (no env set in tests
        // that own this process: the default is 1, but an inherited env
        // var may raise it — only assert the floor).
        assert!(shard_count(Some(0)) >= 1);
        assert!(shard_count(None) >= 1);
    }

    #[test]
    fn chunks_cover_rows_exactly_once() {
        for n in [0usize, 1, 5, 100, 1000] {
            let o = offsets(n);
            let c = RowChunks::balanced(&o, 8, 16);
            assert_eq!(c.rows(), n);
            let mut next = 0usize;
            for r in c.ranges() {
                assert_eq!(r.start, next, "contiguous");
                assert!(r.end > r.start, "non-empty");
                next = r.end;
            }
            assert_eq!(next, n, "covers all rows");
            assert_eq!(c.is_empty(), n == 0);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn chunks_are_balanced_by_edge_count() {
        let o = offsets(1000);
        let c = RowChunks::balanced(&o, 8, 1);
        assert_eq!(c.len(), 8);
        let work = |r: &Range<usize>| (r.len() + (o[r.end] - o[r.start]) as usize) as f64;
        let works: Vec<f64> = c.ranges().iter().map(work).collect();
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        for w in &works {
            assert!(
                (w - mean).abs() < 0.25 * mean,
                "chunk work {w} vs mean {mean}"
            );
        }
    }

    #[test]
    fn small_row_spaces_collapse_to_one_chunk() {
        let o = offsets(10);
        let c = RowChunks::from_offsets(&o);
        assert_eq!(c.len(), 1);
        assert_eq!(c.ranges()[0], 0..10);
    }

    #[test]
    fn uniform_chunks_split_evenly() {
        let c = RowChunks::uniform(10, 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.rows(), 10);
        let sizes: Vec<usize> = c.ranges().iter().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        assert!(RowChunks::uniform(0, 4).is_empty());
        assert_eq!(RowChunks::uniform(2, 8).len(), 2);
    }

    #[test]
    fn par_map_results_arrive_in_chunk_order() {
        let o = offsets(500);
        let c = RowChunks::balanced(&o, 16, 1);
        for threads in [1, 2, 4, 7] {
            let got = par_map(&c, threads, |i, r| (i, r.start, r.end));
            for (pos, &(i, start, end)) in got.iter().enumerate() {
                assert_eq!(pos, i);
                assert_eq!(start..end, c.ranges()[i]);
            }
        }
    }

    #[test]
    fn par_fill_writes_every_row_once() {
        let o = offsets(333);
        let c = RowChunks::balanced(&o, 16, 1);
        for threads in [1, 3, 8] {
            let mut out = vec![usize::MAX; 333];
            par_fill(&c, threads, &mut out, |_, range, slice| {
                for (j, u) in range.clone().enumerate() {
                    slice[j] = u * 2;
                }
            });
            for (u, &v) in out.iter().enumerate() {
                assert_eq!(v, u * 2);
            }
        }
    }

    #[test]
    fn reductions_are_bit_identical_across_thread_counts() {
        // Sum of awkward floats: the fixed chunk-merge order must make the
        // reduction independent of the worker count.
        let o = offsets(2000);
        let c = RowChunks::balanced(&o, 32, 1);
        let value = |u: usize| 1.0 / (u as f64 + 0.3);
        let reduce = |threads: usize| -> f64 {
            par_map(&c, threads, |_, range| range.map(value).sum::<f64>())
                .into_iter()
                .sum()
        };
        let serial = reduce(1);
        for threads in [2, 3, 4, 8, 13] {
            assert_eq!(serial.to_bits(), reduce(threads).to_bits());
        }
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        let o = offsets(100);
        let c = RowChunks::balanced(&o, 10, 1);
        // Each worker counts the chunks it ran; totals must cover all chunks.
        let counts = par_map_with(
            &c,
            4,
            || 0usize,
            |state, _, _| {
                *state += 1;
                *state
            },
        );
        assert_eq!(counts.len(), c.len());
        // A worker's count sequence is 1, 2, ... — every chunk got a value.
        assert!(counts.iter().all(|&v| v >= 1));
    }

    #[test]
    fn shared_buffer_round_trips() {
        let buf = SharedF64Buf::new(4, 1.5);
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
        assert_eq!(buf.get(2), 1.5);
        buf.set(2, -0.25);
        assert_eq!(buf.get(2), -0.25);
        assert_eq!(buf.to_vec(), vec![1.5, 1.5, -0.25, 1.5]);
        assert!(SharedF64Buf::new(0, 0.0).is_empty());
    }

    #[test]
    fn par_iterate_runs_every_chunk_every_iteration() {
        let o = offsets(400);
        let c = RowChunks::balanced(&o, 8, 1);
        for threads in [1usize, 2, 4] {
            // acc[u] counts how many iterations touched row u.
            let acc = SharedF64Buf::new(400, 0.0);
            let mut iterations = 0u64;
            par_iterate(
                &c,
                threads,
                |_, _, range| {
                    for u in range {
                        acc.set(u, acc.get(u) + 1.0);
                    }
                },
                |k| {
                    iterations = k + 1;
                    k < 4 // run exactly 5 iterations
                },
            );
            assert_eq!(iterations, 5, "{threads} threads");
            for u in 0..400 {
                assert_eq!(acc.get(u), 5.0, "row {u} at {threads} threads");
            }
        }
    }

    #[test]
    fn par_iterate_quiescent_window_sees_consistent_state() {
        // An iterative doubling sweep: control verifies after each
        // iteration that every row was doubled exactly once, which fails if
        // workers raced past the end gate.
        let o = offsets(300);
        let c = RowChunks::balanced(&o, 8, 1);
        for threads in [2usize, 4] {
            let buf = SharedF64Buf::new(300, 1.0);
            par_iterate(
                &c,
                threads,
                |_, _, range| {
                    for u in range {
                        buf.set(u, buf.get(u) * 2.0);
                    }
                },
                |k| {
                    let expect = 2.0f64.powi(k as i32 + 1);
                    for u in 0..300 {
                        assert_eq!(buf.get(u), expect, "iteration {k}, row {u}");
                    }
                    k < 3
                },
            );
        }
    }

    #[test]
    fn empty_row_space_is_a_no_op() {
        let c = RowChunks::from_offsets(&[0u32]);
        assert!(c.is_empty());
        let got: Vec<usize> = par_map(&c, 4, |i, _| i);
        assert!(got.is_empty());
        let mut out: Vec<f64> = Vec::new();
        let res: Vec<()> = par_fill(&c, 4, &mut out, |_, _, _| ());
        assert!(res.is_empty());
    }
}
