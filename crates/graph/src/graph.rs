//! Compact weighted graphs used by the analytical algorithms.

use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable external node identifier. Station ids and location ids from the
/// data layer are used directly.
pub type NodeId = u64;

/// A weighted graph (directed or undirected) with merged parallel edges.
///
/// This is the projection every algorithm runs on — the analogue of a Neo4j
/// GDS in-memory graph. Node ids are arbitrary [`NodeId`]s supplied by the
/// caller; internally they are mapped to dense indices.
///
/// * In an **undirected** graph each logical edge `{u, v}` appears in both
///   adjacency lists but is counted once by [`WeightedGraph::edge_count`]
///   and once in [`WeightedGraph::total_weight`]. Self-loops appear once in
///   the adjacency list.
/// * In a **directed** graph edges are stored in out- and in-adjacency.
///
/// Adding an edge between the same pair twice merges the weights, which is
/// exactly the "weighted by the number of trips" aggregation the paper uses
/// for `GBasic`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightedGraph {
    directed: bool,
    node_ids: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    out_adj: Vec<HashMap<usize, f64>>,
    in_adj: Vec<HashMap<usize, f64>>,
    edge_count: usize,
    total_weight: f64,
}

impl WeightedGraph {
    /// Create an empty undirected graph.
    pub fn new_undirected() -> Self {
        Self::new(false)
    }

    /// Create an empty directed graph.
    pub fn new_directed() -> Self {
        Self::new(true)
    }

    fn new(directed: bool) -> Self {
        Self {
            directed,
            node_ids: Vec::new(),
            index: HashMap::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            edge_count: 0,
            total_weight: 0.0,
        }
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of distinct (merged) edges. Undirected edges and self-loops
    /// count once; in a directed graph `u -> v` and `v -> u` are distinct.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of all edge weights (merged edges counted once).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_ids.is_empty()
    }

    /// Add a node if it is not already present; returns its dense index.
    pub fn add_node(&mut self, id: NodeId) -> usize {
        if let Some(&i) = self.index.get(&id) {
            return i;
        }
        let i = self.node_ids.len();
        self.node_ids.push(id);
        self.index.insert(id, i);
        self.out_adj.push(HashMap::new());
        self.in_adj.push(HashMap::new());
        i
    }

    /// Add an edge with weight 1.0 (creating missing endpoints), merging
    /// into any existing edge between the pair.
    pub fn add_unit_edge(&mut self, src: NodeId, dst: NodeId) {
        self.add_edge(src, dst, 1.0);
    }

    /// Add an edge (creating missing endpoints), merging the weight into any
    /// existing edge between the pair.
    ///
    /// Non-finite or negative weights are ignored with a debug assertion —
    /// callers validate weights at the boundary (see
    /// [`WeightedGraph::try_add_edge`] for the checked variant).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) {
        debug_assert!(
            weight.is_finite() && weight >= 0.0,
            "invalid weight {weight}"
        );
        if !weight.is_finite() || weight < 0.0 {
            return;
        }
        let s = self.add_node(src);
        let d = self.add_node(dst);
        self.total_weight += weight;

        if self.directed {
            let is_new = !self.out_adj[s].contains_key(&d);
            *self.out_adj[s].entry(d).or_insert(0.0) += weight;
            *self.in_adj[d].entry(s).or_insert(0.0) += weight;
            if is_new {
                self.edge_count += 1;
            }
        } else {
            let is_new = !self.out_adj[s].contains_key(&d);
            *self.out_adj[s].entry(d).or_insert(0.0) += weight;
            if s != d {
                *self.out_adj[d].entry(s).or_insert(0.0) += weight;
            }
            if is_new {
                self.edge_count += 1;
            }
        }
    }

    /// Checked variant of [`WeightedGraph::add_edge`].
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidWeight`] for non-finite or negative weights.
    pub fn try_add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) -> Result<()> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight(weight));
        }
        self.add_edge(src, dst, weight);
        Ok(())
    }

    /// Whether the node id is present.
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// The dense index of a node id.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// The node id at a dense index.
    pub fn id_of(&self, index: usize) -> Option<NodeId> {
        self.node_ids.get(index).copied()
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Neighbours (by dense index) with merged edge weights.
    ///
    /// For a directed graph these are out-neighbours.
    pub fn neighbors(&self, index: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.out_adj[index].iter().map(|(&n, &w)| (n, w))
    }

    /// In-neighbours (by dense index) with merged edge weights. Only
    /// meaningful for directed graphs; for undirected graphs this equals
    /// [`WeightedGraph::neighbors`].
    pub fn in_neighbors(&self, index: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let adj = if self.directed {
            &self.in_adj[index]
        } else {
            &self.out_adj[index]
        };
        adj.iter().map(|(&n, &w)| (n, w))
    }

    /// The merged weight of the edge from `src` to `dst`, if present.
    pub fn edge_weight(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let s = self.index_of(src)?;
        let d = self.index_of(dst)?;
        self.out_adj[s].get(&d).copied()
    }

    /// Degree of a node id: the number of distinct neighbours
    /// (out-neighbours in a directed graph). Self-loops count once.
    pub fn degree_of(&self, id: NodeId) -> Option<usize> {
        Some(self.out_adj[self.index_of(id)?].len())
    }

    /// Strength of a node id: the sum of the weights of its incident edges
    /// (out-edges in a directed graph).
    pub fn strength_of(&self, id: NodeId) -> Option<f64> {
        Some(self.out_adj[self.index_of(id)?].values().sum())
    }

    /// Strength by dense index (see [`WeightedGraph::strength_of`]).
    pub fn strength(&self, index: usize) -> f64 {
        self.out_adj[index].values().sum()
    }

    /// Degree by dense index (see [`WeightedGraph::degree_of`]).
    pub fn degree(&self, index: usize) -> usize {
        self.out_adj[index].len()
    }

    /// In-strength by dense index: total weight of incoming edges (equals
    /// strength for undirected graphs).
    pub fn in_strength(&self, index: usize) -> f64 {
        if self.directed {
            self.in_adj[index].values().sum()
        } else {
            self.strength(index)
        }
    }

    /// The weight of the self-loop at a node id, or 0.0 when absent.
    pub fn self_loop_weight(&self, id: NodeId) -> f64 {
        self.index_of(id)
            .and_then(|i| self.out_adj[i].get(&i).copied())
            .unwrap_or(0.0)
    }

    /// Iterate over all merged edges as `(src_id, dst_id, weight)`.
    ///
    /// Undirected edges are yielded once with `src_index <= dst_index`;
    /// directed edges are yielded as stored.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (i, adj) in self.out_adj.iter().enumerate() {
            for (&j, &w) in adj {
                if self.directed || i <= j {
                    out.push((self.node_ids[i], self.node_ids[j], w));
                }
            }
        }
        out
    }

    /// An undirected copy of this graph: for a directed graph, `u -> v` and
    /// `v -> u` weights are summed into `{u, v}`; self-loop weights carry
    /// over unchanged. For an undirected graph this is a plain clone.
    ///
    /// This is the projection used before running Louvain, which the paper
    /// runs on "bidirectional" graphs.
    pub fn to_undirected(&self) -> WeightedGraph {
        if !self.directed {
            return self.clone();
        }
        let mut g = WeightedGraph::new_undirected();
        // Preserve node order so dense indices remain comparable.
        for &id in &self.node_ids {
            g.add_node(id);
        }
        for (i, adj) in self.out_adj.iter().enumerate() {
            for (&j, &w) in adj {
                if i <= j {
                    g.add_edge(self.node_ids[i], self.node_ids[j], w);
                } else {
                    // Only add the reverse direction here if there is no
                    // forward edge; otherwise it is merged when we visit it.
                    g.add_edge(self.node_ids[j], self.node_ids[i], w);
                }
            }
        }
        g
    }

    /// Freeze this builder into an immutable [`crate::CsrGraph`] — the
    /// compressed-sparse-row representation every hot algorithm consumes.
    /// Freeze once, then share the frozen graph across algorithms; see the
    /// [`crate::csr`] module docs for the builder/frozen lifecycle.
    pub fn freeze(&self) -> crate::CsrGraph {
        crate::CsrGraph::from_weighted(self)
    }

    /// Build a new graph containing only the nodes for which `keep` returns
    /// true (and the edges among them).
    pub fn subgraph<F: Fn(NodeId) -> bool>(&self, keep: F) -> WeightedGraph {
        let mut g = if self.directed {
            WeightedGraph::new_directed()
        } else {
            WeightedGraph::new_undirected()
        };
        for &id in &self.node_ids {
            if keep(id) {
                g.add_node(id);
            }
        }
        for (src, dst, w) in self.edges() {
            if keep(src) && keep(dst) {
                g.add_edge(src, dst, w);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::new_undirected();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 3.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 1, 1.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(1, 2), Some(6.0));
        assert_eq!(g.edge_weight(2, 1), Some(6.0));
        assert_eq!(g.total_weight(), 6.0);
    }

    #[test]
    fn directed_edges_are_distinct() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 1, 1.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(3.0));
        assert_eq!(g.edge_weight(2, 1), Some(1.0));
    }

    #[test]
    fn self_loops() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(5, 5, 4.0);
        g.add_edge(5, 6, 1.0);
        assert_eq!(g.self_loop_weight(5), 4.0);
        assert_eq!(g.self_loop_weight(6), 0.0);
        assert_eq!(g.edge_count(), 2);
        // Degree counts the self-loop once.
        assert_eq!(g.degree_of(5), Some(2));
        // Strength counts the loop weight once too.
        assert_eq!(g.strength_of(5), Some(5.0));
    }

    #[test]
    fn degree_and_strength() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 3.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(g.degree_of(1), Some(2));
        assert_eq!(g.strength_of(1), Some(5.0));
        assert_eq!(g.degree_of(99), None);
        assert_eq!(g.strength_of(99), None);
    }

    #[test]
    fn directed_in_out() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(3, 2, 2.0);
        g.add_edge(2, 1, 1.0);
        let i2 = g.index_of(2).unwrap();
        assert_eq!(g.degree(i2), 1); // out-neighbours: {1}
        assert_eq!(g.strength(i2), 1.0);
        assert_eq!(g.in_strength(i2), 5.0);
        let in_n: Vec<usize> = g.in_neighbors(i2).map(|(n, _)| n).collect();
        assert_eq!(in_n.len(), 2);
    }

    #[test]
    fn invalid_weights_rejected() {
        let mut g = WeightedGraph::new_undirected();
        assert!(g.try_add_edge(1, 2, f64::NAN).is_err());
        assert!(g.try_add_edge(1, 2, -1.0).is_err());
        assert!(g.try_add_edge(1, 2, 1.0).is_ok());
    }

    #[test]
    fn edges_listing_undirected_unique() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(4, 4, 2.0);
        let mut edges = g.edges();
        edges.sort_by_key(|&(a, b, _)| (a, b));
        assert_eq!(edges.len(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn to_undirected_sums_reciprocal_edges() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 1, 2.0);
        g.add_edge(3, 3, 5.0);
        let u = g.to_undirected();
        assert!(!u.is_directed());
        assert_eq!(u.edge_weight(1, 2), Some(5.0));
        assert_eq!(u.self_loop_weight(3), 5.0);
        assert_eq!(u.edge_count(), 2);
        assert_eq!(u.total_weight(), 10.0);
    }

    #[test]
    fn subgraph_keeps_only_selected() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        let sub = g.subgraph(|id| id <= 2);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.edge_weight(1, 2).is_some());
        assert!(sub.edge_weight(2, 3).is_none());
    }

    #[test]
    fn index_id_round_trip() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(10, 20, 1.0);
        let i = g.index_of(20).unwrap();
        assert_eq!(g.id_of(i), Some(20));
        assert_eq!(g.id_of(999), None);
    }

    #[test]
    fn total_weight_undirected_counts_each_edge_once() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.add_edge(1, 1, 1.0);
        assert_eq!(g.total_weight(), 6.0);
    }
}
