//! Columnar sort-merge CSR construction — the hashmap-free build path.
//!
//! [`WeightedGraph`](crate::WeightedGraph) builds adjacency through
//! per-node hash maps: every inserted edge pays a hash probe per endpoint.
//! That is fine for small graphs but it is the last hash-bound stage on the
//! pipeline's hot path now that every *algorithm* consumes a frozen
//! [`CsrGraph`]. This module replaces it with a columnar pipeline:
//!
//! 1. collect `(src, dst, weight)` triples in a struct-of-arrays
//!    [`EdgeList`];
//! 2. intern external [`NodeId`]s into dense `u32` indices by
//!    **sort + dedup** over `(id, first-occurrence slot)` pairs — no hash
//!    map, and the dense order reproduces the builder's insertion order
//!    exactly (seeded nodes first, then endpoints in edge order);
//! 3. bucket the half-edges by source row with a counting pass, then
//!    **sort each row by target and merge adjacent duplicates**, summing
//!    weights in original insertion order.
//!
//! Steps 2–3 are expressed as fixed-chunk passes on the
//! [`par`] scheduler, so construction parallelises while staying
//! **bit-identical at any thread count** (chunk boundaries never depend on
//! the thread count, and every merge folds per-chunk results in chunk
//! order — the module contract of [`par`]).
//!
//! ## Sharded construction
//!
//! At city scale the serial stable-scatter pass of step 3 dominates the
//! build, so the row packing can additionally be **sharded**: the dense
//! row space is partitioned into contiguous station ranges (balanced by
//! half-edge count — a pure function of the row structure and the shard
//! count, never the thread count), each shard scatters and sort-merges
//! its own rows in parallel, and the shard outputs concatenate in shard
//! order. Because a merged row is a pure function of that row's bucketed
//! entries *in insertion order* — and a shard-local forward scan
//! preserves exactly that order — the sharded build is **bit-identical
//! to the unsharded one at any shard count and any thread count**, the
//! third independence axis after the thread-count and builder/freeze
//! contracts. See [`build_dense_csr_sharded`] and `DESIGN.md`.
//!
//! ## Out-of-core spilled construction
//!
//! When a memory budget is set ([`CsrBuilder::spill_budget`] /
//! [`spill::BUDGET_ENV`]) and the estimated scatter footprint — half-edge
//! count × [`spill::HALF_EDGE_BYTES`] — exceeds it, the half-edge columns
//! are never materialised: the counting pass streams the edges once to
//! build the provisional offsets, a partition pass appends each half-edge
//! to its owning shard's **disk run** (plain little-endian columnar
//! records under a RAII temp dir, see [`spill`]) in global insertion
//! order, and each shard's merge streams back only its own run through
//! the same shard-local scatter + `sort_merge_rows` as the in-memory
//! sharded pass. Because the runs preserve global insertion order within
//! each row, the per-row buckets are byte-equal to the in-memory scatter
//! and the frozen graph is **bit-identical to the in-memory build at any
//! shard count × thread count × budget** — the fourth independence axis,
//! enforced by `tests/proptest_spill.rs`.
//!
//! The output is *exactly* the graph `WeightedGraph::freeze()` would have
//! produced from the same inserts — same dense node table, same sorted
//! rows, same bit pattern in every merged weight and cached degree — which
//! the equivalence proptests assert at 1/2/4 build threads. The builder
//! path survives as the compatibility baseline; this is the hot path.

use crate::csr::CsrParts;
use crate::{par, spill, CsrGraph, NodeId};
use std::path::{Path, PathBuf};

/// A struct-of-arrays list of weighted edges — the columnar intermediate
/// between trip records and a frozen [`CsrGraph`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeList {
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    weight: Vec<f64>,
}

impl EdgeList {
    /// An empty edge list.
    pub fn new() -> EdgeList {
        EdgeList::default()
    }

    /// An empty edge list with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> EdgeList {
        EdgeList {
            src: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            weight: Vec::with_capacity(n),
        }
    }

    /// Reserve capacity for at least `additional` more edges — the
    /// row-count-hint plumbing loaders and generators use so
    /// multi-million-row builds never pay realloc churn.
    pub fn reserve(&mut self, additional: usize) {
        self.src.reserve(additional);
        self.dst.reserve(additional);
        self.weight.reserve(additional);
    }

    /// Append one edge.
    #[inline]
    pub fn push(&mut self, src: NodeId, dst: NodeId, weight: f64) {
        self.src.push(src);
        self.dst.push(dst);
        self.weight.push(weight);
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Iterate over the edges as `(src, dst, weight)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.src
            .iter()
            .zip(&self.dst)
            .zip(&self.weight)
            .map(|((&s, &d), &w)| (s, d, w))
    }
}

impl Extend<(NodeId, NodeId, f64)> for EdgeList {
    fn extend<T: IntoIterator<Item = (NodeId, NodeId, f64)>>(&mut self, iter: T) {
        for (s, d, w) in iter {
            self.push(s, d, w);
        }
    }
}

impl FromIterator<(NodeId, NodeId, f64)> for EdgeList {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId, f64)>>(iter: T) -> EdgeList {
        let mut list = EdgeList::new();
        list.extend(iter);
        list
    }
}

/// Builds a frozen [`CsrGraph`] from an [`EdgeList`] by parallel
/// sort-merge, without touching a hash map on the per-edge path.
///
/// Semantics mirror [`WeightedGraph`](crate::WeightedGraph) insertion
/// exactly:
///
/// * nodes are interned in first-appearance order (seeded nodes first,
///   then `src` before `dst` within each edge);
/// * parallel edges between the same pair merge by summing weights in
///   insertion order;
/// * undirected edges appear in both endpoint rows but count once in
///   [`CsrGraph::edge_count`] / [`CsrGraph::total_weight`];
/// * non-finite or negative weights are ignored, matching
///   [`WeightedGraph::add_edge`](crate::WeightedGraph::add_edge)'s release
///   behaviour.
///
/// See the [module docs](self) for the pipeline and the determinism
/// contract.
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    directed: bool,
    seeds: Vec<NodeId>,
    edges: EdgeList,
    threads: Option<usize>,
    shards: Option<usize>,
    spill_budget: Option<u64>,
    spill_dir: Option<PathBuf>,
}

impl CsrBuilder {
    /// A builder for an undirected graph.
    pub fn undirected() -> CsrBuilder {
        CsrBuilder {
            directed: false,
            ..CsrBuilder::default()
        }
    }

    /// A builder for a directed graph.
    pub fn directed() -> CsrBuilder {
        CsrBuilder {
            directed: true,
            ..CsrBuilder::default()
        }
    }

    /// Override the worker-thread count for [`CsrBuilder::build`]. `None`
    /// (the default) resolves `MOBY_THREADS` / the machine parallelism via
    /// [`par::thread_count`]. The built graph is bit-identical at any
    /// thread count; this only tunes speed.
    pub fn threads(mut self, threads: Option<usize>) -> CsrBuilder {
        self.threads = threads;
        self
    }

    /// Override the construction shard count for [`CsrBuilder::build`].
    /// `None` (the default) resolves `MOBY_SHARDS` via
    /// [`par::shard_count`] (default 1, unsharded). The built graph is
    /// bit-identical at any shard count; sharding only parallelises the
    /// row-scatter pass and bounds per-shard scatter memory — see the
    /// [module docs](self).
    pub fn shards(mut self, shards: Option<usize>) -> CsrBuilder {
        self.shards = shards;
        self
    }

    /// Set the out-of-core spill budget in **megabytes**. `None` (the
    /// default) resolves [`spill::BUDGET_ENV`]; no budget anywhere means
    /// the build never spills. When the estimated scatter footprint
    /// exceeds the budget, [`CsrBuilder::build`] partitions the
    /// half-edges to per-shard disk runs instead of in-memory columns —
    /// the frozen graph is **bit-identical either way** (see the
    /// [module docs](self)), so this only trades build speed for bounded
    /// peak memory. `Some(0)` spills every non-empty build.
    pub fn spill_budget(mut self, budget_mb: Option<u64>) -> CsrBuilder {
        self.spill_budget = budget_mb;
        self
    }

    /// Override the base directory spill runs are created under (default:
    /// [`std::env::temp_dir`]). The build creates — and removes, even on
    /// panic — its own subdirectory beneath it.
    pub fn spill_dir(mut self, dir: Option<PathBuf>) -> CsrBuilder {
        self.spill_dir = dir;
        self
    }

    /// Reserve capacity for at least `additional` more edges (the
    /// row-count hint of [`EdgeList::reserve`]).
    pub fn reserve(&mut self, additional: usize) -> &mut CsrBuilder {
        self.edges.reserve(additional);
        self
    }

    /// Pre-intern nodes in the given order before any edge endpoints —
    /// the analogue of calling
    /// [`WeightedGraph::add_node`](crate::WeightedGraph::add_node) up
    /// front, which is how projections keep isolated stations visible.
    /// Duplicate ids keep their first position.
    pub fn seed_nodes<I: IntoIterator<Item = NodeId>>(&mut self, ids: I) -> &mut CsrBuilder {
        self.seeds.extend(ids);
        self
    }

    /// Append one edge (invalid weights are ignored; see the type docs).
    #[inline]
    pub fn push(&mut self, src: NodeId, dst: NodeId, weight: f64) -> &mut CsrBuilder {
        if weight.is_finite() && weight >= 0.0 {
            self.edges.push(src, dst, weight);
        }
        self
    }

    /// Append every edge of an [`EdgeList`] (invalid weights are ignored).
    pub fn extend_edges(&mut self, edges: &EdgeList) -> &mut CsrBuilder {
        for (s, d, w) in edges.iter() {
            self.push(s, d, w);
        }
        self
    }

    /// Number of (valid) edges buffered so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freeze the buffered edges into a [`CsrGraph`] by parallel
    /// sort-merge. See the [module docs](self).
    ///
    /// # Panics
    ///
    /// If an out-of-core spill engaged (via [`CsrBuilder::spill_budget`]
    /// or [`spill::BUDGET_ENV`]) and failed on I/O. Use
    /// [`CsrBuilder::try_build`] to handle spill failures as errors.
    pub fn build(&self) -> CsrGraph {
        self.try_build()
            .expect("spill I/O failed; use CsrBuilder::try_build to handle it")
    }

    /// [`CsrBuilder::build`] with spill I/O failures surfaced as
    /// [`crate::GraphError::Spill`] instead of panics — the entry for
    /// callers that configure a spill budget and want to degrade
    /// gracefully (e.g. retry in memory or report the temp-dir problem).
    /// Without a resolved budget this never errors.
    pub fn try_build(&self) -> crate::Result<CsrGraph> {
        let threads = par::thread_count(self.threads);
        let m = self.edges.len();
        assert!(
            m <= (u32::MAX / 2) as usize,
            "edge list exceeds the u32 CSR index space"
        );

        // --- Intern: sort (id, first-slot) pairs, dedup, order by slot. ---
        // Seeded nodes occupy slots 0..S; edge k contributes its src at
        // slot S + 2k and its dst at S + 2k + 1, reproducing the builder's
        // add_node order without a hash map.
        let mut pairs: Vec<(NodeId, u64)> = Vec::with_capacity(self.seeds.len() + 2 * m);
        for (i, &id) in self.seeds.iter().enumerate() {
            pairs.push((id, i as u64));
        }
        let base = self.seeds.len() as u64;
        for k in 0..m {
            pairs.push((self.edges.src[k], base + 2 * k as u64));
            pairs.push((self.edges.dst[k], base + 2 * k as u64 + 1));
        }
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0); // keeps the first (minimal) slot per id
        let mut order: Vec<(u64, NodeId)> = pairs.iter().map(|&(id, slot)| (slot, id)).collect();
        order.sort_unstable();
        let node_ids: Vec<NodeId> = order.iter().map(|&(_, id)| id).collect();
        let n = node_ids.len();
        assert!(n <= u32::MAX as usize, "CSR index space is u32");
        // Sorted-by-id lookup table for binary-search endpoint mapping.
        let mut lookup: Vec<(NodeId, u32)> = node_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        lookup.sort_unstable();

        // --- Map endpoints to dense indices (parallel, fixed chunks). ---
        let edge_chunks = par::RowChunks::uniform(m, 64);
        let resolve = |id: NodeId| -> u32 {
            let at = lookup
                .binary_search_by_key(&id, |&(id, _)| id)
                .expect("endpoint interned");
            lookup[at].1
        };
        let mapped = par::par_map(&edge_chunks, threads, |_, range| {
            range
                .map(|k| (resolve(self.edges.src[k]), resolve(self.edges.dst[k])))
                .collect::<Vec<(u32, u32)>>()
        });
        let mut srcs: Vec<u32> = Vec::with_capacity(m);
        let mut dsts: Vec<u32> = Vec::with_capacity(m);
        for chunk in mapped {
            for (s, d) in chunk {
                srcs.push(s);
                dsts.push(d);
            }
        }

        let est_halves = if self.directed { m } else { 2 * m };
        if spill::should_spill(est_halves, spill::budget_bytes(self.spill_budget)) {
            build_dense_csr_spilled(
                self.directed,
                node_ids,
                |f| {
                    for k in 0..m {
                        f(srcs[k], dsts[k], self.edges.weight[k]);
                    }
                    Ok(())
                },
                self.shards,
                self.threads,
                self.spill_dir.as_deref(),
            )
        } else {
            Ok(assemble(
                self.directed,
                node_ids,
                &srcs,
                &dsts,
                &self.edges.weight,
                par::shard_count(self.shards),
                threads,
            ))
        }
    }
}

/// Build a frozen graph straight from **already-interned dense edge
/// columns** — the zero-copy entry for columnar sources like
/// `moby_data`'s trip table, whose rows carry dense `u32` endpoints over
/// a known node table. Skips the intern/sort and endpoint-mapping passes
/// of [`CsrBuilder::build`]; the sort-merge row packing and its
/// semantics (insertion-order weight merges, builder edge-count
/// conventions, bit-identical results at any thread count) are
/// identical.
///
/// `node_ids` supplies the dense node table (dense index = position);
/// `src[k]`/`dst[k]` must be valid indices into it and every weight must
/// be finite and non-negative — callers validate at the boundary, as the
/// trip table does.
pub fn build_dense_csr(
    directed: bool,
    node_ids: Vec<NodeId>,
    src: &[u32],
    dst: &[u32],
    weight: &[f64],
    threads: Option<usize>,
) -> CsrGraph {
    build_dense_csr_sharded(directed, node_ids, src, dst, weight, None, threads)
}

/// [`build_dense_csr`] with an explicit construction shard count — the
/// city-scale entry point.
///
/// The dense row space is partitioned into at most `shards` contiguous
/// station ranges balanced by half-edge count; each shard scatters its
/// own rows from the half-edge columns (a shard-local forward scan, so
/// every row's bucket keeps global insertion order) and sort-merges them
/// with the same per-row machinery as the unsharded path, then the shard
/// outputs concatenate in shard order. The result is **bit-identical to
/// the unsharded build at any shard count and any thread count** — the
/// shard-independence proptests assert this bitwise over
/// {1, 2, 4} shards × {1, 2, 4} threads — so downstream consumers
/// (including [`CsrGraph::apply_delta`](crate::CsrGraph::apply_delta),
/// which accepts sharded bases unchanged) cannot observe the knob.
///
/// `shards = None` resolves the `MOBY_SHARDS` environment variable via
/// [`par::shard_count`] (default 1). Shards bound the parallelism of the
/// scatter/merge stages, so pick `shards >= threads` when sharding for
/// speed; per-shard scatter buffers hold only that shard's half-edges,
/// which is what keeps peak memory bounded on 10M-trip builds.
///
/// # Panics
///
/// If an out-of-core spill engaged via [`spill::BUDGET_ENV`] and failed
/// on I/O. Use [`build_dense_csr_budgeted`] to handle spill errors.
pub fn build_dense_csr_sharded(
    directed: bool,
    node_ids: Vec<NodeId>,
    src: &[u32],
    dst: &[u32],
    weight: &[f64],
    shards: Option<usize>,
    threads: Option<usize>,
) -> CsrGraph {
    build_dense_csr_budgeted(
        directed, node_ids, src, dst, weight, shards, threads, None, None,
    )
    .expect("spill I/O failed; use build_dense_csr_budgeted to handle it")
}

/// [`build_dense_csr_sharded`] with an explicit out-of-core **spill
/// budget** — the bounded-memory city-scale entry point.
///
/// `budget_mb = None` resolves [`spill::BUDGET_ENV`]; when the resolved
/// budget exists and the estimated scatter footprint (half-edge count ×
/// [`spill::HALF_EDGE_BYTES`]) exceeds it, the half-edge columns are
/// partitioned to per-shard disk runs under `spill_dir` (default: the
/// system temp dir) and merged by streaming each shard's run back — see
/// the [module docs](self). The result is **bit-identical to the
/// in-memory build at any shard count × thread count × budget**; only
/// peak memory and build speed change. Spill I/O failures surface as
/// [`crate::GraphError::Spill`].
#[allow(clippy::too_many_arguments)]
pub fn build_dense_csr_budgeted(
    directed: bool,
    node_ids: Vec<NodeId>,
    src: &[u32],
    dst: &[u32],
    weight: &[f64],
    shards: Option<usize>,
    threads: Option<usize>,
    budget_mb: Option<u64>,
    spill_dir: Option<&Path>,
) -> crate::Result<CsrGraph> {
    assert_eq!(src.len(), dst.len(), "dense edge columns must align");
    assert_eq!(src.len(), weight.len(), "dense edge columns must align");
    assert!(
        src.len() <= (u32::MAX / 2) as usize,
        "edge list exceeds the u32 CSR index space"
    );
    let m = src.len();
    let est_halves = if directed { m } else { 2 * m };
    if spill::should_spill(est_halves, spill::budget_bytes(budget_mb)) {
        build_dense_csr_spilled(
            directed,
            node_ids,
            |f| {
                for k in 0..m {
                    f(src[k], dst[k], weight[k]);
                }
                Ok(())
            },
            shards,
            threads,
            spill_dir,
        )
    } else {
        Ok(assemble(
            directed,
            node_ids,
            src,
            dst,
            weight,
            par::shard_count(shards),
            par::thread_count(threads),
        ))
    }
}

/// Out-of-core spilled assembly from a **replayable dense edge stream** —
/// the entry the streaming city arm uses so the full edge columns never
/// materialise in memory.
///
/// `for_each_edge` must replay the same `(src, dst, weight)` sequence —
/// dense indices into `node_ids`, validated weights — on every call, in
/// insertion order (it is called once per pass: counting, partition, and
/// for directed graphs the same two passes again for the in-adjacency).
/// A closure over in-memory columns, a disk spool, or a deterministic
/// generator all qualify. Errors returned by the stream propagate.
///
/// The frozen graph — node table, offsets, targets, merged weight bits,
/// cached degrees, edge count and total weight — is **bit-identical** to
/// [`build_dense_csr`] over the same columns; see the
/// [module docs](self) for why insertion-order runs preserve the fold
/// bits. Spill runs live under `spill_dir` (default: the system temp
/// dir) in a subdirectory that is removed on return, error and panic
/// alike.
pub fn build_dense_csr_spilled<F>(
    directed: bool,
    node_ids: Vec<NodeId>,
    mut for_each_edge: F,
    shards: Option<usize>,
    threads: Option<usize>,
    spill_dir: Option<&Path>,
) -> crate::Result<CsrGraph>
where
    F: FnMut(&mut dyn FnMut(u32, u32, f64)) -> crate::Result<()>,
{
    let threads = par::thread_count(threads);
    let shards = par::shard_count(shards);
    let n = node_ids.len();
    let dir = spill::SpillDir::create(spill_dir)?;

    // Total weight folds in insertion order during the first pass only —
    // at *edge* granularity, before the undirected expansion, exactly
    // like the in-memory `assemble` fold.
    let mut total_weight = 0.0f64;
    let mut m = 0u64;
    let mut fold_done = false;
    let mut out_halves = |f: &mut dyn FnMut(u32, u32, f64)| -> crate::Result<()> {
        let fold = !fold_done;
        fold_done = true;
        for_each_edge(&mut |s, d, w| {
            debug_assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            if fold {
                total_weight += w;
                m += 1;
            }
            f(s, d, w);
            if !directed && s != d {
                f(d, s, w);
            }
        })
    };
    let (offsets, targets, weights, pairs_once) =
        pack_rows_spilled(n, &mut out_halves, shards, threads, dir.path(), "out")?;
    assert!(
        m <= (u32::MAX / 2) as u64,
        "edge list exceeds the u32 CSR index space"
    );
    let (in_offsets, in_targets, in_weights) = if directed {
        let mut in_halves = |f: &mut dyn FnMut(u32, u32, f64)| -> crate::Result<()> {
            for_each_edge(&mut |s, d, w| f(d, s, w))
        };
        let (io, it, iw, _) =
            pack_rows_spilled(n, &mut in_halves, shards, threads, dir.path(), "in")?;
        (io, it, iw)
    } else {
        (Vec::new(), Vec::new(), Vec::new())
    };
    let edge_count = if directed { targets.len() } else { pairs_once };

    // `dir` drops after assembly: the runs are removed on success, and
    // the RAII guard cleans up on every early-`?` and unwind path above.
    Ok(CsrGraph::from_parts(
        CsrParts {
            directed,
            node_ids,
            offsets,
            targets,
            weights,
            in_offsets,
            in_targets,
            in_weights,
            edge_count,
            total_weight,
        },
        threads,
    ))
}

/// The shared tail of both construction entries: pack the dense edge
/// columns into sorted merged CSR rows and assemble the frozen graph.
fn assemble(
    directed: bool,
    node_ids: Vec<NodeId>,
    srcs: &[u32],
    dsts: &[u32],
    weights_in: &[f64],
    shards: usize,
    threads: usize,
) -> CsrGraph {
    let n = node_ids.len();

    // Total weight: summed in insertion order, like the builder.
    let mut total_weight = 0.0f64;
    for &w in weights_in {
        debug_assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
        total_weight += w;
    }

    // Pack rows. Undirected edges emit both orientations (a self-loop
    // emits once), so each endpoint's row sees every incident edge in
    // insertion order, exactly as the builder's symmetric adjacency
    // update does.
    let out_half = half_edges(srcs, dsts, weights_in, directed);
    let (offsets, targets, weights, pairs_once) = pack_rows(n, &out_half, shards, threads);
    let (in_offsets, in_targets, in_weights) = if directed {
        let in_half = half_edges(dsts, srcs, weights_in, true);
        let (io, it, iw, _) = pack_rows(n, &in_half, shards, threads);
        (io, it, iw)
    } else {
        (Vec::new(), Vec::new(), Vec::new())
    };
    let edge_count = if directed { targets.len() } else { pairs_once };

    CsrGraph::from_parts(
        CsrParts {
            directed,
            node_ids,
            offsets,
            targets,
            weights,
            in_offsets,
            in_targets,
            in_weights,
            edge_count,
            total_weight,
        },
        threads,
    )
}

/// Half-edge columns: one `(row, col, weight)` record per adjacency entry,
/// in insertion order. Shared with the delta-merge path
/// ([`crate::delta`]), which must expand batch edges exactly the way a
/// full rebuild would.
pub(crate) struct HalfEdges {
    pub(crate) row: Vec<u32>,
    pub(crate) col: Vec<u32>,
    pub(crate) weight: Vec<f64>,
}

/// Expand edges into half-edges. Directed graphs emit one record per edge
/// (`rows`/`cols` swapped by the caller for the in-adjacency); an
/// undirected edge emits both orientations, self-loops once.
pub(crate) fn half_edges(rows: &[u32], cols: &[u32], weights: &[f64], directed: bool) -> HalfEdges {
    let m = rows.len();
    let mut half = HalfEdges {
        row: Vec::with_capacity(if directed { m } else { 2 * m }),
        col: Vec::with_capacity(if directed { m } else { 2 * m }),
        weight: Vec::with_capacity(if directed { m } else { 2 * m }),
    };
    for k in 0..m {
        half.row.push(rows[k]);
        half.col.push(cols[k]);
        half.weight.push(weights[k]);
        if !directed && rows[k] != cols[k] {
            half.row.push(cols[k]);
            half.col.push(rows[k]);
            half.weight.push(weights[k]);
        }
    }
    half
}

/// Sort-merge a contiguous range of rows whose bucketed entries live in
/// `bucket_col`/`bucket_w` at positions `offsets[u] - base ..
/// offsets[u + 1] - base`. Returns the merged
/// `(targets, weights, per-row lens, pairs_once)` segment for the range,
/// where `pairs_once` counts merged entries with `row <= col` (the
/// undirected edge-count convention).
///
/// This is a pure function of each row's bucket *in insertion order* —
/// the invariant that makes thread-chunk and shard decompositions of the
/// row space interchangeable bit for bit.
fn sort_merge_rows(
    rows: std::ops::Range<usize>,
    offsets: &[u32],
    base: u32,
    bucket_col: &[u32],
    bucket_w: &[f64],
) -> (Vec<u32>, Vec<f64>, Vec<u32>, usize) {
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    let mut lens = Vec::with_capacity(rows.len());
    let mut pairs_once = 0usize;
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    for u in rows {
        let lo = (offsets[u] - base) as usize;
        let hi = (offsets[u + 1] - base) as usize;
        scratch.clear();
        scratch.extend(
            bucket_col[lo..hi]
                .iter()
                .copied()
                .zip(bucket_w[lo..hi].iter().copied()),
        );
        // Stable: equal targets keep insertion order for the merge.
        scratch.sort_by_key(|&(col, _)| col);
        let before = targets.len();
        let mut i = 0usize;
        while i < scratch.len() {
            let col = scratch[i].0;
            let mut acc = 0.0f64;
            while i < scratch.len() && scratch[i].0 == col {
                acc += scratch[i].1;
                i += 1;
            }
            targets.push(col);
            weights.push(acc);
            if u as u32 <= col {
                pairs_once += 1;
            }
        }
        lens.push((targets.len() - before) as u32);
    }
    (targets, weights, lens, pairs_once)
}

/// Bucket half-edges by row (stable counting pass), then sort each row by
/// target and merge adjacent duplicates — weights summed in insertion
/// order. Returns `(offsets, targets, weights, pairs_once)` where
/// `pairs_once` counts merged entries with `row <= col` (the undirected
/// edge-count convention).
///
/// With `shards > 1` the scatter itself is sharded: the row space splits
/// into contiguous ranges balanced by half-edge count (a pure function of
/// the provisional offsets and the shard count), each shard scatters and
/// merges its own rows, and the shard outputs concatenate in shard
/// order — bit-identical to the unsharded pass at any shard count (see
/// the [module docs](self)).
fn pack_rows(
    n: usize,
    half: &HalfEdges,
    shards: usize,
    threads: usize,
) -> (Vec<u32>, Vec<u32>, Vec<f64>, usize) {
    let h = half.row.len();
    assert!(h <= u32::MAX as usize, "half-edge space exceeds u32");

    // Per-chunk histograms over fixed uniform chunks, merged in chunk
    // order: provisional row counts independent of the thread count.
    let chunks = par::RowChunks::uniform(h, 16);
    let histograms = par::par_map(&chunks, threads, |_, range| {
        let mut counts = vec![0u32; n];
        for i in range {
            counts[half.row[i] as usize] += 1;
        }
        counts
    });
    let mut offsets = vec![0u32; n + 1];
    for counts in &histograms {
        for (u, &c) in counts.iter().enumerate() {
            offsets[u + 1] += c;
        }
    }
    for u in 0..n {
        offsets[u + 1] += offsets[u];
    }

    let merged = if shards <= 1 {
        // Stable scatter: a single linear pass in insertion order, so
        // every row's bucket lists its entries oldest-first (the merge
        // relies on this to reproduce the builder's accumulation order).
        let mut bucket_col = vec![0u32; h];
        let mut bucket_w = vec![0.0f64; h];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for i in 0..h {
            let r = half.row[i] as usize;
            let p = cursor[r] as usize;
            cursor[r] += 1;
            bucket_col[p] = half.col[i];
            bucket_w[p] = half.weight[i];
        }

        // Per-row sort + adjacent merge, parallel over edge-balanced row
        // chunks; per-chunk outputs concatenate in chunk order.
        let row_chunks = par::RowChunks::balanced(&offsets, 64, 4096);
        par::par_map(&row_chunks, threads, |_, range| {
            sort_merge_rows(range, &offsets, 0, &bucket_col, &bucket_w)
        })
    } else {
        // Shard boundaries: contiguous row ranges balanced by half-edge
        // count — a pure function of the offsets and the shard count.
        let shard_chunks = par::RowChunks::balanced(&offsets, shards, 1);
        par::par_map(&shard_chunks, threads, |_, rows| {
            // Shard-local stable scatter: one forward pass over the full
            // half-edge columns keeps each of this shard's rows in
            // global insertion order, so the per-row buckets are
            // byte-equal to the slices the unsharded scatter produces.
            let base = offsets[rows.start];
            let len = (offsets[rows.end] - base) as usize;
            let mut bucket_col = vec![0u32; len];
            let mut bucket_w = vec![0.0f64; len];
            let mut cursor: Vec<u32> = offsets[rows.clone()].to_vec();
            for i in 0..h {
                let r = half.row[i] as usize;
                if r < rows.start || r >= rows.end {
                    continue;
                }
                let p = (cursor[r - rows.start] - base) as usize;
                cursor[r - rows.start] += 1;
                bucket_col[p] = half.col[i];
                bucket_w[p] = half.weight[i];
            }
            sort_merge_rows(rows, &offsets, base, &bucket_col, &bucket_w)
        })
    };

    concat_segments(n, merged)
}

/// One merged row-range output: `(targets, weights, row lens, pairs_once)`
/// as produced by [`sort_merge_rows`] for a contiguous row range.
type PackSegment = (Vec<u32>, Vec<f64>, Vec<u32>, usize);

/// Concatenate per-range [`sort_merge_rows`] outputs in range order into
/// final `(offsets, targets, weights, pairs_once)` CSR columns — shared
/// by the in-memory and spilled packing paths.
fn concat_segments(n: usize, merged: Vec<PackSegment>) -> (Vec<u32>, Vec<u32>, Vec<f64>, usize) {
    let mut final_offsets = Vec::with_capacity(n + 1);
    final_offsets.push(0u32);
    let mut final_targets = Vec::new();
    let mut final_weights = Vec::new();
    let mut pairs_once = 0usize;
    for (targets, weights, lens, pairs) in merged {
        for len in lens {
            final_offsets.push(final_offsets.last().unwrap() + len);
        }
        final_targets.extend(targets);
        final_weights.extend(weights);
        pairs_once += pairs;
    }
    // Empty row spaces (n rows, zero chunks) still need n+1 offsets.
    while final_offsets.len() < n + 1 {
        final_offsets.push(*final_offsets.last().unwrap());
    }
    (final_offsets, final_targets, final_weights, pairs_once)
}

/// The out-of-core counterpart of [`pack_rows`]: the half-edge stream is
/// replayed twice — a counting pass builds the provisional offsets, then
/// a partition pass appends each half-edge to its owning shard's disk
/// run (per-shard contiguous row ranges balanced by half-edge count,
/// exactly [`pack_rows`]'s shard boundaries). Each shard then streams
/// its own run back into a scatter bucket and merges with the shared
/// [`sort_merge_rows`] — since the run preserves global insertion order
/// for that shard's rows, the buckets (and therefore the merged columns
/// and fold bits) are byte-equal to the in-memory pass.
fn pack_rows_spilled(
    n: usize,
    halves: &mut dyn FnMut(&mut dyn FnMut(u32, u32, f64)) -> crate::Result<()>,
    shards: usize,
    threads: usize,
    dir: &Path,
    tag: &str,
) -> crate::Result<(Vec<u32>, Vec<u32>, Vec<f64>, usize)> {
    // Counting pass: provisional per-row offsets, no storage of the
    // half-edges themselves.
    let mut offsets = vec![0u32; n + 1];
    let mut h = 0u64;
    halves(&mut |row, _, _| {
        offsets[row as usize + 1] += 1;
        h += 1;
    })?;
    assert!(h <= u32::MAX as u64, "half-edge space exceeds u32");
    for u in 0..n {
        offsets[u + 1] += offsets[u];
    }

    // Shard boundaries are the same pure function of (offsets, shards)
    // the in-memory path uses, so the row partition is identical.
    let shard_chunks = par::RowChunks::balanced(&offsets, shards, 1);
    let mut shard_of = vec![0u32; n];
    for (s, rows) in shard_chunks.ranges().iter().enumerate() {
        for slot in &mut shard_of[rows.clone()] {
            *slot = s as u32;
        }
    }

    // Partition pass: every half-edge appends to its shard's run file in
    // stream order, so each run lists its shard's half-edges in global
    // insertion order. Write errors latch inside the writers and surface
    // at finish().
    let mut writers = spill::ShardRunWriters::create(dir, shard_chunks.len(), tag)?;
    halves(&mut |row, col, w| {
        writers.push(shard_of[row as usize] as usize, row, col, w);
    })?;
    let runs = writers.finish()?;

    // Per-shard streaming read-back + scatter + sort-merge: the bucket a
    // shard fills from its run is byte-equal to the slice the in-memory
    // forward scan would have produced for the same rows.
    let merged = par::par_map(
        &shard_chunks,
        threads,
        |s, rows| -> crate::Result<PackSegment> {
            let base = offsets[rows.start];
            let len = (offsets[rows.end] - base) as usize;
            debug_assert_eq!(
                runs.shard_len(s) as usize,
                len,
                "run/offset length mismatch"
            );
            let mut bucket_col = vec![0u32; len];
            let mut bucket_w = vec![0.0f64; len];
            let mut cursor: Vec<u32> = offsets[rows.clone()].to_vec();
            runs.for_each(s, &mut |row, col, w| {
                let r = row as usize;
                debug_assert!(r >= rows.start && r < rows.end, "half-edge in wrong run");
                let p = (cursor[r - rows.start] - base) as usize;
                cursor[r - rows.start] += 1;
                bucket_col[p] = col;
                bucket_w[p] = w;
            })?;
            Ok(sort_merge_rows(
                rows,
                &offsets,
                base,
                &bucket_col,
                &bucket_w,
            ))
        },
    );
    let mut segments = Vec::with_capacity(merged.len());
    for seg in merged {
        segments.push(seg?);
    }
    Ok(concat_segments(n, segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightedGraph;

    fn sample_edges() -> Vec<(NodeId, NodeId, f64)> {
        vec![
            (10, 20, 3.0),
            (20, 30, 1.0),
            (10, 20, 2.0), // merges
            (40, 40, 5.0), // self-loop
            (30, 10, 0.5),
        ]
    }

    /// Bit-strict equality between a built CSR and a frozen builder.
    fn assert_identical(built: &CsrGraph, frozen: &CsrGraph) {
        assert_eq!(built, frozen);
        assert_eq!(
            built.total_weight().to_bits(),
            frozen.total_weight().to_bits()
        );
        for u in 0..frozen.node_count() {
            let (bt, bw) = built.row(u);
            let (ft, fw) = frozen.row(u);
            assert_eq!(bt, ft, "row {u} targets");
            for (a, b) in bw.iter().zip(fw) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {u} weights");
            }
            assert_eq!(built.strength(u).to_bits(), frozen.strength(u).to_bits());
            assert_eq!(
                built.weighted_degree(u).to_bits(),
                frozen.weighted_degree(u).to_bits()
            );
            assert_eq!(built.self_loop(u).to_bits(), frozen.self_loop(u).to_bits());
            let (bit, biw) = built.in_row(u);
            let (fit, fiw) = frozen.in_row(u);
            assert_eq!(bit, fit, "in-row {u} targets");
            for (a, b) in biw.iter().zip(fiw) {
                assert_eq!(a.to_bits(), b.to_bits(), "in-row {u} weights");
            }
        }
    }

    #[test]
    fn forced_spill_matches_in_memory_bitwise() {
        // Budget 0 forces every half-edge through the disk runs; the
        // frozen graph must stay bit-identical to the in-memory build
        // across shard and thread counts, directed and undirected.
        let edges = sample_edges();
        let (src_ids, dst_ids, w): (Vec<_>, Vec<_>, Vec<_>) = {
            let mut s = Vec::new();
            let mut d = Vec::new();
            let mut ww = Vec::new();
            for &(a, b, c) in &edges {
                s.push(a);
                d.push(b);
                ww.push(c);
            }
            (s, d, ww)
        };
        let mut node_ids: Vec<NodeId> = src_ids.iter().chain(&dst_ids).copied().collect();
        node_ids.sort_unstable();
        node_ids.dedup();
        let dense = |ids: &[NodeId]| -> Vec<u32> {
            ids.iter()
                .map(|id| node_ids.binary_search(id).unwrap() as u32)
                .collect()
        };
        let (src, dst) = (dense(&src_ids), dense(&dst_ids));
        for directed in [false, true] {
            let baseline = build_dense_csr(directed, node_ids.clone(), &src, &dst, &w, Some(1));
            for shards in [1usize, 2, 4] {
                for threads in [1usize, 2, 4] {
                    let spilled = build_dense_csr_budgeted(
                        directed,
                        node_ids.clone(),
                        &src,
                        &dst,
                        &w,
                        Some(shards),
                        Some(threads),
                        Some(0),
                        None,
                    )
                    .expect("spilled build");
                    assert_identical(&spilled, &baseline);
                }
            }
        }
    }

    #[test]
    fn huge_budget_never_spills_and_matches() {
        // A budget far above the footprint takes the in-memory branch;
        // result equality is the observable contract either way.
        let edges = sample_edges();
        let mut b = CsrBuilder::undirected().spill_budget(Some(1 << 20));
        let mut plain = CsrBuilder::undirected();
        for &(s, d, w) in &edges {
            b.push(s, d, w);
            plain.push(s, d, w);
        }
        assert_identical(&b.try_build().expect("build"), &plain.build());
    }

    #[test]
    fn builder_spill_budget_matches_plain_build() {
        let edges = sample_edges();
        for directed in [false, true] {
            let mk = || {
                if directed {
                    CsrBuilder::directed()
                } else {
                    CsrBuilder::undirected()
                }
            };
            let mut plain = mk();
            let mut spilled = mk().spill_budget(Some(0)).shards(Some(3)).threads(Some(2));
            for &(s, d, w) in &edges {
                plain.push(s, d, w);
                spilled.push(s, d, w);
            }
            assert_identical(&spilled.build(), &plain.build());
        }
    }

    #[test]
    fn spill_runs_are_removed_on_success() {
        let base = std::env::temp_dir().join(format!("moby-spill-test-ok-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let mut b = CsrBuilder::undirected()
            .spill_budget(Some(0))
            .spill_dir(Some(base.clone()));
        for &(s, d, w) in &sample_edges() {
            b.push(s, d, w);
        }
        let g = b.build();
        assert_eq!(g.node_count(), 4);
        let leftovers: Vec<_> = std::fs::read_dir(&base).unwrap().collect();
        assert!(
            leftovers.is_empty(),
            "spill runs left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn unwritable_spill_dir_is_an_error_not_a_panic() {
        // A plain file as the base dir: create_dir_all under it fails,
        // and try_build surfaces GraphError::Spill instead of panicking.
        let file = std::env::temp_dir().join(format!("moby-spill-test-f-{}", std::process::id()));
        std::fs::write(&file, b"not a dir").unwrap();
        let mut b = CsrBuilder::undirected()
            .spill_budget(Some(0))
            .spill_dir(Some(file.join("sub")));
        for &(s, d, w) in &sample_edges() {
            b.push(s, d, w);
        }
        match b.try_build() {
            Err(crate::GraphError::Spill(msg)) => {
                assert!(msg.contains("spill dir"), "unexpected message: {msg}")
            }
            other => panic!("expected Err(Spill), got {other:?}"),
        }
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn empty_build_never_spills() {
        let g = CsrBuilder::undirected()
            .spill_budget(Some(0))
            .try_build()
            .expect("empty build");
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn undirected_build_matches_freeze() {
        let mut g = WeightedGraph::new_undirected();
        for &(s, d, w) in &sample_edges() {
            g.add_edge(s, d, w);
        }
        for threads in [1usize, 2, 4] {
            let mut b = CsrBuilder::undirected().threads(Some(threads));
            for &(s, d, w) in &sample_edges() {
                b.push(s, d, w);
            }
            assert_identical(&b.build(), &g.freeze());
        }
    }

    #[test]
    fn directed_build_matches_freeze() {
        let mut g = WeightedGraph::new_directed();
        for &(s, d, w) in &sample_edges() {
            g.add_edge(s, d, w);
        }
        for threads in [1usize, 2, 4] {
            let mut b = CsrBuilder::directed().threads(Some(threads));
            for &(s, d, w) in &sample_edges() {
                b.push(s, d, w);
            }
            assert_identical(&b.build(), &g.freeze());
        }
    }

    #[test]
    fn seeded_nodes_come_first_and_keep_isolated_nodes() {
        let seeds = [5u64, 1, 99];
        let mut g = WeightedGraph::new_undirected();
        for &id in &seeds {
            g.add_node(id);
        }
        g.add_edge(1, 7, 2.0);
        let mut b = CsrBuilder::undirected();
        b.seed_nodes(seeds);
        b.push(1, 7, 2.0);
        let built = b.build();
        assert_identical(&built, &g.freeze());
        assert_eq!(built.node_ids(), &[5, 1, 99, 7]);
        assert_eq!(built.degree_of(99), Some(0));
    }

    #[test]
    fn duplicate_seeds_keep_first_position() {
        let mut b = CsrBuilder::undirected();
        b.seed_nodes([3u64, 3, 1, 3]);
        let built = b.build();
        assert_eq!(built.node_ids(), &[3, 1]);
    }

    #[test]
    fn invalid_weights_are_ignored_entirely() {
        let mut b = CsrBuilder::undirected();
        b.push(1, 2, f64::NAN);
        b.push(3, 4, -1.0);
        assert_eq!(b.edge_count(), 0);
        let built = b.build();
        // Like the builder, a rejected edge interns no endpoints.
        assert!(built.is_empty());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let built = CsrBuilder::directed().build();
        assert!(built.is_empty());
        assert_eq!(built.edge_count(), 0);
        assert_eq!(built.total_weight(), 0.0);
    }

    #[test]
    fn edge_list_round_trips() {
        let list: EdgeList = sample_edges().into_iter().collect();
        assert_eq!(list.len(), 5);
        assert!(!list.is_empty());
        let back: Vec<_> = list.iter().collect();
        assert_eq!(back, sample_edges());
        let mut b = CsrBuilder::undirected();
        b.extend_edges(&list);
        assert_eq!(b.edge_count(), 5);
        assert!(EdgeList::with_capacity(8).is_empty());
    }

    #[test]
    fn dense_build_matches_seeded_builder() {
        // Dense columns over a sorted node table reproduce exactly what a
        // fully-seeded builder (and therefore a freeze) produces.
        let node_ids: Vec<NodeId> = vec![10, 20, 30, 40, 99];
        let dense = |id: NodeId| node_ids.iter().position(|&x| x == id).unwrap() as u32;
        let (mut src, mut dst, mut w) = (Vec::new(), Vec::new(), Vec::new());
        let mut g_dir = WeightedGraph::new_directed();
        let mut g_und = WeightedGraph::new_undirected();
        for &id in &node_ids {
            g_dir.add_node(id);
            g_und.add_node(id);
        }
        for &(a, b, weight) in &sample_edges() {
            src.push(dense(a));
            dst.push(dense(b));
            w.push(weight);
            g_dir.add_edge(a, b, weight);
            g_und.add_edge(a, b, weight);
        }
        for threads in [Some(1), Some(3)] {
            let built = build_dense_csr(true, node_ids.clone(), &src, &dst, &w, threads);
            assert_identical(&built, &g_dir.freeze());
            let built = build_dense_csr(false, node_ids.clone(), &src, &dst, &w, threads);
            assert_identical(&built, &g_und.freeze());
        }
    }

    #[test]
    fn subgraph_matches_builder_subgraph() {
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.5);
        g.add_edge(3, 4, 2.0);
        g.add_edge(2, 2, 0.5);
        let keep = |id: NodeId| id <= 3;
        let via_builder = g.subgraph(keep).freeze();
        let via_csr = g.freeze().subgraph(keep);
        assert_identical(&via_csr, &via_builder);
    }

    #[test]
    fn sharded_dense_build_matches_unsharded() {
        // Small-shard smoke case: every shard count must reproduce the
        // unsharded build bit for bit (the full differential suite lives
        // in tests/proptest_sharded.rs).
        let node_ids: Vec<NodeId> = (0..40).map(|i| i * 3 + 1).collect();
        let mut x = 99u64;
        let (mut src, mut dst, mut w) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            src.push(((x >> 33) % 40) as u32);
            dst.push(((x >> 17) % 40) as u32);
            w.push(((x >> 3) % 100) as f64 / 16.0 + 0.5);
        }
        for directed in [false, true] {
            let base = build_dense_csr(directed, node_ids.clone(), &src, &dst, &w, Some(2));
            for shards in [1usize, 2, 3, 4, 7] {
                for threads in [1usize, 2, 4] {
                    let sharded = build_dense_csr_sharded(
                        directed,
                        node_ids.clone(),
                        &src,
                        &dst,
                        &w,
                        Some(shards),
                        Some(threads),
                    );
                    assert_identical(&sharded, &base);
                }
            }
        }
    }

    #[test]
    fn sharded_builder_matches_unsharded_builder() {
        let base = {
            let mut b = CsrBuilder::undirected();
            b.extend_edges(&sample_edges().into_iter().collect());
            b.build()
        };
        for shards in [1usize, 2, 4] {
            let mut b = CsrBuilder::undirected().shards(Some(shards));
            b.reserve(sample_edges().len());
            b.extend_edges(&sample_edges().into_iter().collect());
            assert_identical(&b.build(), &base);
        }
    }

    #[test]
    fn sharded_build_handles_empty_and_single_row_spaces() {
        let empty = build_dense_csr_sharded(false, Vec::new(), &[], &[], &[], Some(4), Some(2));
        assert!(empty.is_empty());
        let one = build_dense_csr_sharded(
            true,
            vec![7],
            &[0, 0],
            &[0, 0],
            &[1.0, 2.0],
            Some(4),
            Some(2),
        );
        assert_eq!(one.node_count(), 1);
        assert_eq!(one.row(0), (&[0u32][..], &[3.0][..]));
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        // A larger pseudo-random list so several chunks exist.
        let mut edges = EdgeList::new();
        let mut x = 7u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (x >> 33) % 257;
            let d = (x >> 17) % 257;
            let w = ((x >> 3) % 1000) as f64 / 64.0 + 0.25;
            edges.push(s, d, w);
        }
        for directed in [false, true] {
            let mk = |threads: usize| {
                let mut b = if directed {
                    CsrBuilder::directed()
                } else {
                    CsrBuilder::undirected()
                }
                .threads(Some(threads));
                b.extend_edges(&edges);
                b.build()
            };
            let one = mk(1);
            for threads in [2usize, 3, 8] {
                assert_identical(&mk(threads), &one);
            }
        }
    }
}
