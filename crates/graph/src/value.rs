//! Typed property values for nodes and relationships.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A typed property value, the analogue of a Neo4j property.
///
/// Only the types the pipeline actually needs are supported: integers
/// (counts, ids, weekday/hour keys), floats (coordinates, weights), text
/// (names, colours) and booleans (flags such as `is_fixed`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropValue {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean flag.
    Bool(bool),
}

impl PropValue {
    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropValue::Float(v) => Some(*v),
            PropValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as text, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PropValue::Text(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropValue::Int(v) => write!(f, "{v}"),
            PropValue::Float(v) => write!(f, "{v}"),
            PropValue::Text(v) => write!(f, "{v}"),
            PropValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}
impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Float(v)
    }
}
impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::Text(v.to_owned())
    }
}
impl From<String> for PropValue {
    fn from(v: String) -> Self {
        PropValue::Text(v)
    }
}
impl From<bool> for PropValue {
    fn from(v: bool) -> Self {
        PropValue::Bool(v)
    }
}

/// An ordered property map. `BTreeMap` keeps iteration deterministic, which
/// keeps exports and test expectations stable.
pub type PropMap = BTreeMap<String, PropValue>;

/// Convenience constructor for a [`PropMap`] from `(key, value)` pairs.
///
/// ```
/// use moby_graph::{props, PropValue};
/// let m = props([("name", PropValue::from("Smithfield")), ("docks", PropValue::from(12i64))]);
/// assert_eq!(m["docks"].as_int(), Some(12));
/// ```
pub fn props<I, K>(pairs: I) -> PropMap
where
    I: IntoIterator<Item = (K, PropValue)>,
    K: Into<String>,
{
    pairs.into_iter().map(|(k, v)| (k.into(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(PropValue::Int(3).as_int(), Some(3));
        assert_eq!(PropValue::Int(3).as_float(), Some(3.0));
        assert_eq!(PropValue::Float(2.5).as_float(), Some(2.5));
        assert_eq!(PropValue::Float(2.5).as_int(), None);
        assert_eq!(PropValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(PropValue::Bool(true).as_bool(), Some(true));
        assert_eq!(PropValue::Bool(true).as_int(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(PropValue::from(4i64), PropValue::Int(4));
        assert_eq!(PropValue::from(1.5f64), PropValue::Float(1.5));
        assert_eq!(PropValue::from("hi"), PropValue::Text("hi".into()));
        assert_eq!(PropValue::from(false), PropValue::Bool(false));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(PropValue::Int(7).to_string(), "7");
        assert_eq!(PropValue::Text("a b".into()).to_string(), "a b");
        assert_eq!(PropValue::Bool(true).to_string(), "true");
    }

    #[test]
    fn props_builder_is_deterministic() {
        let m = props([("b", PropValue::from(1i64)), ("a", PropValue::from(2i64))]);
        let keys: Vec<&str> = m.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
