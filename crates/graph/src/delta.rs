//! Incremental CSR updates — merging an edge batch into a frozen graph.
//!
//! The columnar build path ([`build_dense_csr`](crate::build_dense_csr) /
//! [`CsrBuilder`](crate::CsrBuilder)) rebuilds a [`CsrGraph`] from the full
//! edge list. A live pipeline ingesting trip batches should not pay that
//! cost per batch: a [`CsrDelta`] turns a batch's edge columns into
//! per-row insert/merge plans, and [`CsrGraph::apply_delta`] produces the
//! updated frozen graph by merging those plans into the existing CSR rows.
//!
//! ## The equivalence contract
//!
//! `apply_delta` output is **bit-identical to rebuilding from the
//! concatenated edge list** (old edges first, then the batch in insertion
//! order) via the full columnar path — same node table, offsets, targets,
//! weights, cached degrees, edge count and total weight, at any thread
//! count. Two facts make this hold:
//!
//! 1. **Merged weights are prefix folds.** The rebuild merges a row by
//!    stable-sorting its half-edges by target and summing weights in
//!    insertion order; all old half-edges precede all batch half-edges in
//!    the concatenated list, so the *stored* old merged weight is exactly
//!    the rebuild's fold prefix. Continuing the fold from it
//!    (`acc = old_weight; acc += batch entries in order`) reproduces the
//!    rebuild's bits. The same argument covers
//!    [`total_weight`](CsrGraph::total_weight) and, inductively, chains of
//!    deltas.
//! 2. **Node tables extend monotonically.** Appending edges never reorders
//!    previously interned nodes: first-appearance interning
//!    ([`CsrDelta::extend_by_id`]) appends new ids after the old table,
//!    and sorted dense interning ([`CsrDelta::from_dense`]) shifts old
//!    indices by a monotone remap. Old rows stay sorted under either, so a
//!    two-pointer merge with the batch buckets yields the rebuild's rows.
//!
//! The merge runs as fixed-chunk [`par::RowChunks`] passes on the PR 2
//! scheduler — chunk boundaries depend only on the graph and the delta,
//! never the thread count — so applying a delta is parallel yet
//! bit-identical at any parallelism, like every other pass in this crate.
//! The differential proptest suite (`crates/core/tests/proptest_delta.rs`)
//! and the `bench_smoke` CI job enforce the contract end to end.
//!
//! **Sharded bases.** A base graph built through the sharded path
//! ([`build_dense_csr_sharded`](crate::build_dense_csr_sharded)) is
//! bit-identical to the unsharded build, so `apply_delta` accepts it
//! unchanged and the equivalence contract carries over verbatim: delta on
//! a sharded base equals the unsharded rebuild of the concatenated list.
//! The shard-independence suite (`crates/graph/tests/proptest_sharded.rs`)
//! chains deltas onto sharded bases to pin this down.

use crate::build::{half_edges, HalfEdges};
use crate::csr::CsrParts;
use crate::{par, CsrGraph, NodeId};

/// A batch of edges prepared for merging into a frozen [`CsrGraph`] —
/// the new dense node table plus the batch's edge columns expressed in
/// that table's index space. Build one with [`CsrDelta::from_dense`]
/// (columnar sources that manage their own sorted intern table, like
/// `moby_data`'s trip table) or [`CsrDelta::extend_by_id`]
/// (first-appearance-interned graphs, like the layered temporal graphs),
/// then apply it with [`CsrGraph::apply_delta`].
#[derive(Debug, Clone)]
pub struct CsrDelta {
    directed: bool,
    new_node_ids: Vec<NodeId>,
    /// Monotone map from old dense index to new dense index; `None` means
    /// the old table is an unchanged prefix of `new_node_ids`.
    old_to_new: Option<Vec<u32>>,
    src: Vec<u32>,
    dst: Vec<u32>,
    weight: Vec<f64>,
}

impl CsrDelta {
    /// A delta from **already-interned dense edge columns**, the analogue
    /// of [`build_dense_csr`](crate::build_dense_csr) for batches.
    ///
    /// `new_node_ids` is the node table *after* the batch (dense index =
    /// position); `old_to_new` maps each old dense index to its position
    /// in the new table and must be strictly increasing (pass `None` when
    /// the old table is an unchanged prefix, the no-new-nodes /
    /// appended-nodes case). `src[k]`/`dst[k]` are indices into the new
    /// table and every weight must be finite and non-negative — callers
    /// validate at the boundary, exactly as the trip table does for
    /// [`build_dense_csr`](crate::build_dense_csr).
    pub fn from_dense(
        directed: bool,
        new_node_ids: Vec<NodeId>,
        old_to_new: Option<Vec<u32>>,
        src: &[u32],
        dst: &[u32],
        weight: &[f64],
    ) -> CsrDelta {
        assert_eq!(src.len(), dst.len(), "delta edge columns must align");
        assert_eq!(src.len(), weight.len(), "delta edge columns must align");
        let n_new = new_node_ids.len();
        assert!(n_new <= u32::MAX as usize, "CSR index space is u32");
        for (&s, &d) in src.iter().zip(dst) {
            assert!(
                (s as usize) < n_new && (d as usize) < n_new,
                "delta endpoint outside the new node table"
            );
        }
        if let Some(map) = &old_to_new {
            assert!(
                map.windows(2).all(|w| w[0] < w[1]),
                "old_to_new must be strictly increasing"
            );
            assert!(
                map.last().is_none_or(|&last| (last as usize) < n_new),
                "old_to_new exceeds the new node table"
            );
        }
        for &w in weight {
            debug_assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
        }
        CsrDelta {
            directed,
            new_node_ids,
            old_to_new,
            src: src.to_vec(),
            dst: dst.to_vec(),
            weight: weight.to_vec(),
        }
    }

    /// A delta from external-id edges against a **first-appearance
    /// interned** graph (one built by [`CsrBuilder`](crate::CsrBuilder)):
    /// endpoints already in `graph` keep their dense index, new ids are
    /// appended in first-appearance order (`src` before `dst` within each
    /// edge), exactly where a [`CsrBuilder`](crate::CsrBuilder) rebuild
    /// over the concatenated edge list would intern them. Non-finite or
    /// negative weights are ignored and intern no endpoints, matching
    /// [`CsrBuilder::push`](crate::CsrBuilder::push).
    pub fn extend_by_id<I>(graph: &CsrGraph, edges: I) -> CsrDelta
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let edges: Vec<(NodeId, NodeId, f64)> = edges
            .into_iter()
            .filter(|&(_, _, w)| w.is_finite() && w >= 0.0)
            .collect();
        let n_old = graph.node_count();

        // Intern the batch's new ids by the builder's (id, first-slot)
        // sort+dedup trick, restricted to ids the graph doesn't know.
        let mut pairs: Vec<(NodeId, u64)> = Vec::with_capacity(2 * edges.len());
        for (k, &(s, d, _)) in edges.iter().enumerate() {
            pairs.push((s, 2 * k as u64));
            pairs.push((d, 2 * k as u64 + 1));
        }
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        pairs.retain(|&(id, _)| graph.index_of(id).is_none());
        let mut order: Vec<(u64, NodeId)> = pairs.iter().map(|&(id, slot)| (slot, id)).collect();
        order.sort_unstable();

        let mut new_node_ids = graph.node_ids().to_vec();
        new_node_ids.extend(order.iter().map(|&(_, id)| id));
        assert!(
            new_node_ids.len() <= u32::MAX as usize,
            "CSR index space is u32"
        );
        // Sorted lookup over the appended ids only; old ids resolve
        // through the graph's own index.
        let mut appended: Vec<(NodeId, u32)> = order
            .iter()
            .enumerate()
            .map(|(i, &(_, id))| (id, (n_old + i) as u32))
            .collect();
        appended.sort_unstable();
        let resolve = |id: NodeId| -> u32 {
            graph.index_of(id).unwrap_or_else(|| {
                let at = appended
                    .binary_search_by_key(&id, |&(id, _)| id)
                    .expect("endpoint interned");
                appended[at].1
            })
        };

        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        let mut weight = Vec::with_capacity(edges.len());
        for &(s, d, w) in &edges {
            src.push(resolve(s));
            dst.push(resolve(d));
            weight.push(w);
        }
        CsrDelta {
            directed: graph.is_directed(),
            new_node_ids,
            old_to_new: None,
            src,
            dst,
            weight,
        }
    }

    /// Whether the delta targets a directed graph.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of batch edges.
    pub fn edge_count(&self) -> usize {
        self.src.len()
    }

    /// Whether the delta carries no batch edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// The node table after the batch (dense index = position).
    pub fn new_node_ids(&self) -> &[NodeId] {
        &self.new_node_ids
    }
}

impl CsrGraph {
    /// Merge a [`CsrDelta`] into this frozen graph, producing the frozen
    /// graph of the concatenated edge list — **bit-identical to a full
    /// rebuild** via the columnar path, at any thread count. See the
    /// [module docs](self) for the contract and why it holds.
    ///
    /// Untouched rows are copied (never re-merged from half-edges); rows
    /// with batch entries run a two-pointer sorted merge that continues
    /// the rebuild's weight fold from the stored merged weights.
    ///
    /// # Panics
    ///
    /// If the delta's directedness or node table is incompatible with
    /// this graph (`old_to_new` length / id mismatches).
    pub fn apply_delta(&self, delta: &CsrDelta, threads: Option<usize>) -> CsrGraph {
        assert_eq!(
            self.is_directed(),
            delta.directed,
            "delta directedness mismatch"
        );
        let n_old = self.node_count();
        let n_new = delta.new_node_ids.len();
        match &delta.old_to_new {
            None => {
                assert!(
                    n_new >= n_old && self.node_ids() == &delta.new_node_ids[..n_old],
                    "delta node table must extend the graph's"
                );
            }
            Some(map) => {
                assert_eq!(map.len(), n_old, "old_to_new must cover every old node");
                for (ou, &nu) in map.iter().enumerate() {
                    assert_eq!(
                        delta.new_node_ids[nu as usize],
                        self.node_ids()[ou],
                        "old_to_new must preserve node ids"
                    );
                }
            }
        }
        let threads = par::thread_count(threads);

        // Total weight continues the rebuild's insertion-order fold from
        // the old total (the fold's prefix — see the module docs).
        let mut total_weight = self.total_weight();
        for &w in &delta.weight {
            total_weight += w;
        }

        let map = delta.old_to_new.as_deref();
        let out_half = half_edges(&delta.src, &delta.dst, &delta.weight, self.is_directed());
        let (offsets, targets, weights, pairs_once) = merge_rows(
            n_new,
            n_old,
            map,
            |ou| self.row(ou),
            self.offsets(),
            &out_half,
            threads,
        );
        let (in_offsets, in_targets, in_weights) = if self.is_directed() {
            let in_half = half_edges(&delta.dst, &delta.src, &delta.weight, true);
            let (io, it, iw, _) = merge_rows(
                n_new,
                n_old,
                map,
                |ou| self.in_row(ou),
                self.in_offsets(),
                &in_half,
                threads,
            );
            (io, it, iw)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let edge_count = if self.is_directed() {
            targets.len()
        } else {
            pairs_once
        };

        CsrGraph::from_parts(
            CsrParts {
                directed: self.is_directed(),
                node_ids: delta.new_node_ids.clone(),
                offsets,
                targets,
                weights,
                in_offsets,
                in_targets,
                in_weights,
                edge_count,
                total_weight,
            },
            threads,
        )
    }
}

/// Merge old CSR rows with a batch's half-edges over the new row space:
/// per-row two-pointer sorted merge, weights folded old-first then batch
/// entries in insertion order. Returns
/// `(offsets, targets, weights, pairs_once)` with the same conventions as
/// the full build's row packing.
fn merge_rows<'g, F>(
    n_new: usize,
    n_old: usize,
    old_to_new: Option<&[u32]>,
    old_row: F,
    old_offsets: &[u32],
    half: &HalfEdges,
    threads: usize,
) -> (Vec<u32>, Vec<u32>, Vec<f64>, usize)
where
    F: Fn(usize) -> (&'g [u32], &'g [f64]) + Sync,
{
    let h = half.row.len();
    let old_entries = old_offsets.last().map(|&e| e as usize).unwrap_or(0);
    assert!(
        old_entries + h <= u32::MAX as usize,
        "merged adjacency exceeds the u32 CSR index space"
    );

    // Bucket the batch half-edges by new row: counting pass + stable
    // scatter, insertion order preserved inside each bucket (the weight
    // fold depends on it). Batches are small next to the graph, so this
    // stays serial; the expensive whole-graph merge below is parallel.
    let mut bucket_offsets = vec![0u32; n_new + 1];
    for &r in &half.row {
        bucket_offsets[r as usize + 1] += 1;
    }
    for u in 0..n_new {
        bucket_offsets[u + 1] += bucket_offsets[u];
    }
    let mut bucket_col = vec![0u32; h];
    let mut bucket_w = vec![0.0f64; h];
    let mut cursor: Vec<u32> = bucket_offsets[..n_new].to_vec();
    for i in 0..h {
        let r = half.row[i] as usize;
        let p = cursor[r] as usize;
        cursor[r] += 1;
        bucket_col[p] = half.col[i];
        bucket_w[p] = half.weight[i];
    }

    // Old row behind each new row (u32::MAX = none).
    let mut old_of_new = vec![u32::MAX; n_new];
    match old_to_new {
        Some(map) => {
            for (ou, &nu) in map.iter().enumerate() {
                old_of_new[nu as usize] = ou as u32;
            }
        }
        None => {
            for (ou, slot) in old_of_new.iter_mut().enumerate().take(n_old) {
                *slot = ou as u32;
            }
        }
    }

    // Provisional per-row entry counts drive the chunk balance; they
    // depend only on the graph and the delta, so chunk boundaries — and
    // therefore the merged bits — are identical at any thread count.
    let mut prov = Vec::with_capacity(n_new + 1);
    prov.push(0u32);
    for u in 0..n_new {
        let old_len = match old_of_new[u] {
            u32::MAX => 0,
            ou => (old_offsets[ou as usize + 1] - old_offsets[ou as usize]) as usize,
        };
        let batch_len = (bucket_offsets[u + 1] - bucket_offsets[u]) as usize;
        prov.push(prov[u] + (old_len + batch_len) as u32);
    }

    let row_chunks = par::RowChunks::balanced(&prov, 64, 4096);
    let merged = par::par_map(&row_chunks, threads, |_, range| {
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut lens = Vec::with_capacity(range.len());
        let mut pairs_once = 0usize;
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for u in range {
            let before = targets.len();
            let (ot, ow) = match old_of_new[u] {
                u32::MAX => (&[] as &[u32], &[] as &[f64]),
                ou => old_row(ou as usize),
            };
            let lo = bucket_offsets[u] as usize;
            let hi = bucket_offsets[u + 1] as usize;
            if lo == hi {
                // Untouched row: copy (weights bit-for-bit), remapping
                // targets only when old indices shifted.
                match old_to_new {
                    None => targets.extend_from_slice(ot),
                    Some(map) => targets.extend(ot.iter().map(|&c| map[c as usize])),
                }
                weights.extend_from_slice(ow);
                // Merged entries with row <= col, over the remapped
                // (still sorted) targets.
                let row_tail = &targets[before..];
                pairs_once += row_tail.len() - row_tail.partition_point(|&c| (c as usize) < u);
                lens.push((targets.len() - before) as u32);
                continue;
            }
            // Batch entries of this row, stable-sorted by target so equal
            // targets keep insertion order for the fold.
            scratch.clear();
            scratch.extend(
                bucket_col[lo..hi]
                    .iter()
                    .copied()
                    .zip(bucket_w[lo..hi].iter().copied()),
            );
            scratch.sort_by_key(|&(col, _)| col);
            let remap = |c: u32| old_to_new.map_or(c, |m| m[c as usize]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < ot.len() || j < scratch.len() {
                let next_old = (i < ot.len()).then(|| remap(ot[i]));
                let next_new = (j < scratch.len()).then(|| scratch[j].0);
                let (col, w) = match (next_old, next_new) {
                    (Some(oc), None) => {
                        let r = (oc, ow[i]);
                        i += 1;
                        r
                    }
                    (Some(oc), Some(nc)) if oc < nc => {
                        let r = (oc, ow[i]);
                        i += 1;
                        r
                    }
                    (oc, Some(nc)) => {
                        // Fold from the old merged weight when the target
                        // exists, else from zero — the rebuild's prefix.
                        let mut acc = if oc == Some(nc) {
                            i += 1;
                            ow[i - 1]
                        } else {
                            0.0
                        };
                        while j < scratch.len() && scratch[j].0 == nc {
                            acc += scratch[j].1;
                            j += 1;
                        }
                        (nc, acc)
                    }
                    (None, None) => unreachable!("loop condition"),
                };
                targets.push(col);
                weights.push(w);
                if u as u32 <= col {
                    pairs_once += 1;
                }
            }
            lens.push((targets.len() - before) as u32);
        }
        (targets, weights, lens, pairs_once)
    });

    let mut final_offsets = Vec::with_capacity(n_new + 1);
    final_offsets.push(0u32);
    let mut final_targets = Vec::new();
    let mut final_weights = Vec::new();
    let mut pairs_once = 0usize;
    for (targets, weights, lens, pairs) in merged {
        for len in lens {
            final_offsets.push(final_offsets.last().unwrap() + len);
        }
        final_targets.extend(targets);
        final_weights.extend(weights);
        pairs_once += pairs;
    }
    while final_offsets.len() < n_new + 1 {
        final_offsets.push(*final_offsets.last().unwrap());
    }
    (final_offsets, final_targets, final_weights, pairs_once)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dense_csr, CsrBuilder};

    /// Bit-strict equality between two frozen graphs (the delta contract).
    fn assert_identical(got: &CsrGraph, want: &CsrGraph) {
        assert_eq!(got, want);
        assert_eq!(got.total_weight().to_bits(), want.total_weight().to_bits());
        for u in 0..want.node_count() {
            let (gt, gw) = got.row(u);
            let (wt, ww) = want.row(u);
            assert_eq!(gt, wt, "row {u} targets");
            for (a, b) in gw.iter().zip(ww) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {u} weights");
            }
            assert_eq!(got.strength(u).to_bits(), want.strength(u).to_bits());
            assert_eq!(
                got.weighted_degree(u).to_bits(),
                want.weighted_degree(u).to_bits()
            );
            assert_eq!(got.self_loop(u).to_bits(), want.self_loop(u).to_bits());
            let (git, giw) = got.in_row(u);
            let (wit, wiw) = want.in_row(u);
            assert_eq!(git, wit, "in-row {u} targets");
            for (a, b) in giw.iter().zip(wiw) {
                assert_eq!(a.to_bits(), b.to_bits(), "in-row {u} weights");
            }
        }
    }

    /// Pseudo-random dense edge columns over `n` nodes.
    fn random_edges(n: u32, m: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        let mut x = seed | 1;
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            src.push(((x >> 33) % n as u64) as u32);
            dst.push(((x >> 17) % n as u64) as u32);
            w.push(((x >> 3) % 1000) as f64 / 64.0 + 0.25);
        }
        (src, dst, w)
    }

    #[test]
    fn dense_delta_matches_rebuild_without_new_nodes() {
        let node_ids: Vec<NodeId> = (0..50).map(|i| 10 * i + 3).collect();
        let (src, dst, w) = random_edges(50, 400, 7);
        let (bs, bd, bw) = random_edges(50, 37, 1234);
        for directed in [false, true] {
            let base = build_dense_csr(directed, node_ids.clone(), &src, &dst, &w, Some(2));
            let delta = CsrDelta::from_dense(directed, node_ids.clone(), None, &bs, &bd, &bw);
            assert_eq!(delta.edge_count(), 37);
            assert!(!delta.is_empty());
            assert_eq!(delta.is_directed(), directed);
            let all_src: Vec<u32> = src.iter().chain(&bs).copied().collect();
            let all_dst: Vec<u32> = dst.iter().chain(&bd).copied().collect();
            let all_w: Vec<f64> = w.iter().chain(&bw).copied().collect();
            let want = build_dense_csr(
                directed,
                node_ids.clone(),
                &all_src,
                &all_dst,
                &all_w,
                Some(1),
            );
            for threads in [1usize, 2, 4] {
                assert_identical(&base.apply_delta(&delta, Some(threads)), &want);
            }
        }
    }

    #[test]
    fn dense_delta_remaps_interleaved_new_nodes() {
        // Old sorted table {10, 30, 50}; batch introduces 20 and 60, so
        // old indices 1 and 2 shift by one.
        let old_ids: Vec<NodeId> = vec![10, 30, 50];
        let new_ids: Vec<NodeId> = vec![10, 20, 30, 50, 60];
        let old_to_new = vec![0u32, 2, 3];
        let (src, dst, w) = random_edges(3, 60, 5);
        let base = build_dense_csr(false, old_ids, &src, &dst, &w, Some(1));
        // Batch edges in the NEW index space, touching old and new nodes.
        let bs = vec![1u32, 4, 2, 1];
        let bd = vec![2u32, 1, 2, 1];
        let bw = vec![0.5, 1.25, 2.0, 0.75];
        let delta = CsrDelta::from_dense(
            false,
            new_ids.clone(),
            Some(old_to_new.clone()),
            &bs,
            &bd,
            &bw,
        );
        // Expected: rebuild over the concatenated list in the new space.
        let remap = |c: u32| old_to_new[c as usize];
        let all_src: Vec<u32> = src.iter().map(|&c| remap(c)).chain(bs).collect();
        let all_dst: Vec<u32> = dst.iter().map(|&c| remap(c)).chain(bd).collect();
        let all_w: Vec<f64> = w.iter().copied().chain(bw).collect();
        let want = build_dense_csr(false, new_ids, &all_src, &all_dst, &all_w, Some(1));
        for threads in [1usize, 2, 4] {
            assert_identical(&base.apply_delta(&delta, Some(threads)), &want);
        }
    }

    #[test]
    fn extend_by_id_matches_builder_rebuild() {
        let old_edges = [(5u64, 9u64, 1.5), (9, 12, 2.0), (5, 5, 0.5)];
        let batch = [
            (9u64, 77u64, 1.0), // new node 77
            (5, 9, 0.25),       // merges into an existing edge
            (88, 77, 3.0),      // two new nodes, 88 first by src slot
            (12, 12, 1.0),
        ];
        for directed in [false, true] {
            let mk = |edges: &[(u64, u64, f64)]| {
                let mut b = if directed {
                    CsrBuilder::directed()
                } else {
                    CsrBuilder::undirected()
                };
                for &(s, d, w) in edges {
                    b.push(s, d, w);
                }
                b.build()
            };
            let base = mk(&old_edges);
            let all: Vec<_> = old_edges.iter().chain(&batch).copied().collect();
            let want = mk(&all);
            let delta = CsrDelta::extend_by_id(&base, batch.iter().copied());
            assert_eq!(delta.new_node_ids(), want.node_ids());
            for threads in [1usize, 2, 4] {
                assert_identical(&base.apply_delta(&delta, Some(threads)), &want);
            }
        }
    }

    #[test]
    fn extend_by_id_skips_invalid_weights_like_the_builder() {
        let mut b = CsrBuilder::undirected();
        b.push(1, 2, 1.0);
        let base = b.build();
        let delta = CsrDelta::extend_by_id(&base, [(1u64, 99u64, f64::NAN), (2, 98, -1.0)]);
        // Rejected edges intern no endpoints and carry no rows.
        assert!(delta.is_empty());
        assert_eq!(delta.new_node_ids(), base.node_ids());
        assert_identical(&base.apply_delta(&delta, Some(2)), &base);
    }

    #[test]
    fn empty_delta_reproduces_the_graph() {
        let (src, dst, w) = random_edges(20, 100, 99);
        let ids: Vec<NodeId> = (0..20).collect();
        for directed in [false, true] {
            let base = build_dense_csr(directed, ids.clone(), &src, &dst, &w, Some(1));
            let delta = CsrDelta::from_dense(directed, ids.clone(), None, &[], &[], &[]);
            assert_identical(&base.apply_delta(&delta, Some(3)), &base);
        }
    }

    #[test]
    fn delta_chain_matches_one_shot_rebuild() {
        // Three consecutive batches == one concatenated rebuild, bitwise.
        let ids: Vec<NodeId> = (0..64).collect();
        let (mut all_src, mut all_dst, mut all_w) = random_edges(64, 300, 42);
        let mut g = build_dense_csr(true, ids.clone(), &all_src, &all_dst, &all_w, Some(2));
        for round in 0..3u64 {
            let (bs, bd, bw) = random_edges(64, 50, 1000 + round);
            let delta = CsrDelta::from_dense(true, ids.clone(), None, &bs, &bd, &bw);
            g = g.apply_delta(&delta, Some(2));
            all_src.extend(bs);
            all_dst.extend(bd);
            all_w.extend(bw);
        }
        let want = build_dense_csr(true, ids, &all_src, &all_dst, &all_w, Some(1));
        assert_identical(&g, &want);
    }

    #[test]
    #[should_panic(expected = "directedness")]
    fn mismatched_directedness_panics() {
        let base = build_dense_csr(true, vec![1, 2], &[0], &[1], &[1.0], Some(1));
        let delta = CsrDelta::from_dense(false, vec![1, 2], None, &[], &[], &[]);
        base.apply_delta(&delta, None);
    }

    #[test]
    #[should_panic(expected = "node table")]
    fn incompatible_node_table_panics() {
        let base = build_dense_csr(true, vec![1, 2], &[0], &[1], &[1.0], Some(1));
        let delta = CsrDelta::from_dense(true, vec![2, 1], None, &[], &[], &[]);
        base.apply_delta(&delta, None);
    }
}
