//! A labelled property-graph store (the Neo4j-replacement substrate).
//!
//! The store keeps full fidelity: every trip is an individual relationship
//! carrying its own properties (start time, day of week, hour), exactly as
//! the paper's Neo4j database does. Analytical algorithms do not run on the
//! store directly — they run on a [`crate::WeightedGraph`] projected out of
//! it (see [`crate::aggregate`]), mirroring how the Neo4j GDS library
//! projects an in-memory graph before running Louvain.

use crate::{GraphError, NodeId, PropMap, PropValue, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A node (e.g. a station or a raw rental location) with a label and
/// properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// Stable external identifier.
    pub id: NodeId,
    /// Node label, e.g. `"Station"` or `"Location"`.
    pub label: String,
    /// Arbitrary typed properties.
    pub props: PropMap,
}

/// A relationship (e.g. a single trip) between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Source node id.
    pub src: NodeId,
    /// Destination node id.
    pub dst: NodeId,
    /// Relationship label, e.g. `"TRIP"`.
    pub label: String,
    /// Arbitrary typed properties (start time, weekday, hour, ...).
    pub props: PropMap,
}

/// An in-memory labelled property graph.
///
/// Nodes are keyed by caller-supplied [`NodeId`]s; relationships are stored
/// in insertion order and may freely form multi-edges and self-loops, as
/// dockless trips do.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphStore {
    nodes: HashMap<NodeId, NodeRecord>,
    edges: Vec<EdgeRecord>,
}

impl GraphStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of relationships (multi-edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the store holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Insert (or replace) a node.
    ///
    /// Returns the previous record when the id was already present, which
    /// lets callers detect accidental id reuse.
    pub fn upsert_node(&mut self, node: NodeRecord) -> Option<NodeRecord> {
        self.nodes.insert(node.id, node)
    }

    /// Convenience constructor for a node with a label and properties.
    pub fn add_node(&mut self, id: NodeId, label: &str, props: PropMap) -> Option<NodeRecord> {
        self.upsert_node(NodeRecord {
            id,
            label: label.to_owned(),
            props,
        })
    }

    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&NodeRecord> {
        self.nodes.get(&id)
    }

    /// Mutable access to a node's record.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut NodeRecord> {
        self.nodes.get_mut(&id)
    }

    /// Whether a node exists.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Iterate over all nodes in an unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeRecord> {
        self.nodes.values()
    }

    /// All node ids, sorted ascending (deterministic order for exports).
    pub fn node_ids_sorted(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Add a relationship between two existing nodes.
    ///
    /// # Errors
    ///
    /// [`GraphError::DanglingEdge`] when either endpoint is missing.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: &str,
        props: PropMap,
    ) -> Result<()> {
        if !self.nodes.contains_key(&src) || !self.nodes.contains_key(&dst) {
            return Err(GraphError::DanglingEdge { src, dst });
        }
        self.edges.push(EdgeRecord {
            src,
            dst,
            label: label.to_owned(),
            props,
        });
        Ok(())
    }

    /// Iterate over all relationships in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = &EdgeRecord> {
        self.edges.iter()
    }

    /// All relationships with the given label.
    pub fn edges_with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a EdgeRecord> {
        self.edges.iter().filter(move |e| e.label == label)
    }

    /// All nodes with the given label.
    pub fn nodes_with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a NodeRecord> {
        self.nodes.values().filter(move |n| n.label == label)
    }

    /// Out-degree of a node counting every individual relationship
    /// (multi-edges each count).
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.edges.iter().filter(|e| e.src == id).count()
    }

    /// In-degree of a node counting every individual relationship.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.edges.iter().filter(|e| e.dst == id).count()
    }

    /// Set a property on a node.
    ///
    /// # Errors
    ///
    /// [`GraphError::MissingNode`] when the node does not exist.
    pub fn set_node_prop(&mut self, id: NodeId, key: &str, value: PropValue) -> Result<()> {
        match self.nodes.get_mut(&id) {
            Some(n) => {
                n.props.insert(key.to_owned(), value);
                Ok(())
            }
            None => Err(GraphError::MissingNode(id)),
        }
    }

    /// Keep only the relationships satisfying `keep`, preserving insertion
    /// order among survivors, and return how many were removed. This is the
    /// windowed-eviction hook: expired `TRIP` relationships leave the store
    /// while nodes stay (a station with no surviving trips is still a
    /// station).
    pub fn retain_edges(&mut self, mut keep: impl FnMut(&EdgeRecord) -> bool) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| keep(e));
        before - self.edges.len()
    }

    /// Consistency check: every edge endpoint must exist. Returns the number
    /// of edges checked.
    ///
    /// # Errors
    ///
    /// [`GraphError::DanglingEdge`] on the first violation (none can occur
    /// through the public API; the check guards deserialized stores).
    pub fn validate(&self) -> Result<usize> {
        for e in &self.edges {
            if !self.nodes.contains_key(&e.src) || !self.nodes.contains_key(&e.dst) {
                return Err(GraphError::DanglingEdge {
                    src: e.src,
                    dst: e.dst,
                });
            }
        }
        Ok(self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    fn sample_store() -> GraphStore {
        let mut s = GraphStore::new();
        s.add_node(1, "Station", props([("name", PropValue::from("A"))]));
        s.add_node(2, "Station", props([("name", PropValue::from("B"))]));
        s.add_node(3, "Location", PropMap::new());
        s.add_edge(1, 2, "TRIP", props([("hour", PropValue::from(8i64))]))
            .unwrap();
        s.add_edge(1, 2, "TRIP", props([("hour", PropValue::from(9i64))]))
            .unwrap();
        s.add_edge(2, 1, "TRIP", PropMap::new()).unwrap();
        s.add_edge(1, 1, "TRIP", PropMap::new()).unwrap(); // self-loop
        s
    }

    #[test]
    fn counts() {
        let s = sample_store();
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn add_edge_requires_endpoints() {
        let mut s = GraphStore::new();
        s.add_node(1, "Station", PropMap::new());
        let err = s.add_edge(1, 99, "TRIP", PropMap::new()).unwrap_err();
        assert_eq!(err, GraphError::DanglingEdge { src: 1, dst: 99 });
    }

    #[test]
    fn multi_edges_and_self_loops_allowed() {
        let s = sample_store();
        assert_eq!(s.out_degree(1), 3); // 2 to B + self-loop
        assert_eq!(s.in_degree(1), 2); // from B + self-loop
        assert_eq!(s.out_degree(2), 1);
    }

    #[test]
    fn label_filters() {
        let s = sample_store();
        assert_eq!(s.nodes_with_label("Station").count(), 2);
        assert_eq!(s.nodes_with_label("Location").count(), 1);
        assert_eq!(s.edges_with_label("TRIP").count(), 4);
        assert_eq!(s.edges_with_label("OTHER").count(), 0);
    }

    #[test]
    fn upsert_replaces_and_reports() {
        let mut s = sample_store();
        let prev = s.add_node(1, "Station", props([("name", PropValue::from("A2"))]));
        assert!(prev.is_some());
        assert_eq!(s.node(1).unwrap().props["name"].as_text(), Some("A2"));
    }

    #[test]
    fn set_node_prop() {
        let mut s = sample_store();
        s.set_node_prop(1, "community", PropValue::from(2i64))
            .unwrap();
        assert_eq!(s.node(1).unwrap().props["community"].as_int(), Some(2));
        assert!(matches!(
            s.set_node_prop(99, "x", PropValue::from(1i64)),
            Err(GraphError::MissingNode(99))
        ));
    }

    #[test]
    fn node_ids_sorted_is_deterministic() {
        let s = sample_store();
        assert_eq!(s.node_ids_sorted(), vec![1, 2, 3]);
    }

    #[test]
    fn validate_passes_for_consistent_store() {
        assert_eq!(sample_store().validate().unwrap(), 4);
    }

    #[test]
    fn retain_edges_drops_expired_and_keeps_order() {
        let mut s = sample_store();
        let removed = s.retain_edges(|e| e.props.get("hour").and_then(|v| v.as_int()) != Some(8));
        assert_eq!(removed, 1);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.node_count(), 3, "eviction never removes nodes");
        let hours: Vec<Option<i64>> = s
            .edges()
            .map(|e| e.props.get("hour").and_then(|v| v.as_int()))
            .collect();
        assert_eq!(hours, vec![Some(9), None, None]);
        assert_eq!(s.retain_edges(|_| true), 0);
    }
}
