//! Incremental CSR eviction — removing expired edges from a frozen graph.
//!
//! [`CsrDelta`](crate::CsrDelta) is the *addition* arm of the delta
//! lifecycle; this module is the subtraction arm a sliding window needs.
//! A [`CsrEvict`] describes which rows lost edges and what survives;
//! [`CsrGraph::apply_evict`] produces the frozen graph of the surviving
//! edge list.
//!
//! ## Why subtraction cannot continue the fold
//!
//! The addition arm leans on stored merged weights being **prefix folds**
//! of a rebuild: old half-edges precede batch half-edges, so `apply_delta`
//! just continues the fold. Removal breaks that argument — evicting a trip
//! deletes an element from the *middle* of a row's insertion-order fold,
//! and floating-point addition is not invertible (subtracting the evicted
//! weight back out does not reproduce the rebuild's bits). Two facts
//! rescue incrementality:
//!
//! 1. **Untouched rows are unchanged folds.** A merged row is a pure
//!    function of that row's half-edge bucket in insertion order. A row
//!    incident to no evicted trip has the same bucket in the surviving
//!    list as in the original, so its stored targets and weights are
//!    byte-equal to the rebuild's — they copy, with targets remapped
//!    through the node-table compaction.
//! 2. **Touched rows re-fold from survivors.** Rows that lost a half-edge
//!    re-run the builder's per-row stable-sort + adjacent-merge over their
//!    surviving bucket — bit-identical to the rebuild by construction.
//!
//! [`total_weight`](CsrGraph::total_weight) is a *global* insertion-order
//! fold over the weight column, so removal anywhere re-folds it over the
//! full surviving column (one linear pass — cheap next to re-merging
//! every row).
//!
//! The re-fold runs as fixed-chunk [`par::RowChunks`] passes like every
//! other sweep in this crate, so the contract is: **`apply_evict` output
//! is bit-identical to a one-shot columnar build over the surviving edge
//! list, at any thread count and against bases built at any shard
//! count.** The windowed differential suite
//! (`crates/core/tests/proptest_window.rs`) enforces it end to end.
//!
//! ## Node-table compaction
//!
//! Sorted dense tables (the trip table's station intern) compact to a
//! sorted **subset**, so the remap is monotone ([`CsrEvict::from_dense`]).
//! First-appearance-interned graphs (the layered temporal graphs) are
//! subtler: a node first interned by an evicted edge but still referenced
//! later *moves* to its new first appearance, so the rebuild's table is a
//! **permuted** subset. [`CsrEvict::retrench_by_id`] recomputes the
//! builder's intern over the surviving list; untouched rows then remap
//! *and re-sort* their (unique-target) entries, which reproduces the
//! rebuild's sorted rows because per-target merged weights are unaffected
//! by the order of *other* targets.

use crate::build::{half_edges, HalfEdges};
use crate::csr::CsrParts;
use crate::{par, CsrGraph, NodeId};

/// An eviction prepared for application to a frozen [`CsrGraph`] — the
/// node table and full edge columns *after* the removal, plus the set of
/// touched nodes whose rows must be re-folded. Build one with
/// [`CsrEvict::from_dense`] (sorted dense intern tables, like
/// `moby_data`'s trip table) or [`CsrEvict::retrench_by_id`]
/// (first-appearance-interned graphs, like the layered temporal graphs),
/// then apply it with [`CsrGraph::apply_evict`].
#[derive(Debug, Clone)]
pub struct CsrEvict {
    directed: bool,
    new_node_ids: Vec<NodeId>,
    /// For each new dense index, the old dense index. `None` means the
    /// node table is unchanged. Monotone for [`CsrEvict::from_dense`],
    /// possibly permuting for [`CsrEvict::retrench_by_id`].
    new_to_old: Option<Vec<u32>>,
    /// External ids of the nodes incident to an evicted edge — exactly
    /// the rows whose merged weights must be re-folded.
    touched: Vec<NodeId>,
    /// The full surviving edge columns in the **new** index space,
    /// insertion order.
    src: Vec<u32>,
    dst: Vec<u32>,
    weight: Vec<f64>,
}

impl CsrEvict {
    /// An eviction from **already-interned dense edge columns**, the
    /// analogue of [`CsrDelta::from_dense`](crate::CsrDelta::from_dense)
    /// for removals.
    ///
    /// `new_node_ids` is the node table *after* the eviction (dense index
    /// = position); `new_to_old` maps each surviving dense index to its
    /// position in the old table and must be strictly increasing — the
    /// sorted-subset compaction a sorted intern table produces (pass
    /// `None` when no node was dropped). `src`/`dst`/`weight` are the
    /// **full surviving** edge columns in the new index space — the
    /// re-fold needs every touched row's surviving bucket, and the
    /// total-weight fold needs the whole column. `touched` lists the
    /// external ids incident to at least one evicted edge (a superset is
    /// allowed: re-folding an unchanged row reproduces its bits).
    pub fn from_dense(
        directed: bool,
        new_node_ids: Vec<NodeId>,
        new_to_old: Option<Vec<u32>>,
        touched: Vec<NodeId>,
        src: &[u32],
        dst: &[u32],
        weight: &[f64],
    ) -> CsrEvict {
        assert_eq!(src.len(), dst.len(), "evict edge columns must align");
        assert_eq!(src.len(), weight.len(), "evict edge columns must align");
        let n_new = new_node_ids.len();
        assert!(n_new <= u32::MAX as usize, "CSR index space is u32");
        for (&s, &d) in src.iter().zip(dst) {
            assert!(
                (s as usize) < n_new && (d as usize) < n_new,
                "evict endpoint outside the new node table"
            );
        }
        if let Some(map) = &new_to_old {
            assert_eq!(map.len(), n_new, "new_to_old must cover every new node");
            assert!(
                map.windows(2).all(|w| w[0] < w[1]),
                "new_to_old must be strictly increasing"
            );
        }
        for &w in weight {
            debug_assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
        }
        CsrEvict {
            directed,
            new_node_ids,
            new_to_old,
            touched,
            src: src.to_vec(),
            dst: dst.to_vec(),
            weight: weight.to_vec(),
        }
    }

    /// An eviction against a **first-appearance interned** graph (one
    /// built by [`CsrBuilder`](crate::CsrBuilder)): re-runs the builder's
    /// `(id, first-slot)` sort+dedup intern over the surviving external-id
    /// edge list, so the new node table — including the permutation of
    /// nodes whose first appearance was evicted — matches a
    /// [`CsrBuilder`](crate::CsrBuilder) rebuild exactly. `touched` lists
    /// the external ids incident to an evicted edge; every one must be
    /// known to `graph`.
    ///
    /// Weights must already satisfy the validated-weights contract
    /// (finite, non-negative) — surviving edges come from sources that
    /// validated at the boundary, so unlike the builder there is nothing
    /// left to filter.
    pub fn retrench_by_id<I>(graph: &CsrGraph, surviving: I, touched: Vec<NodeId>) -> CsrEvict
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let edges: Vec<(NodeId, NodeId, f64)> = surviving.into_iter().collect();
        // The builder's intern: (id, first-slot) sort + dedup, ordered by
        // slot (src before dst within each edge, no seeds).
        let mut pairs: Vec<(NodeId, u64)> = Vec::with_capacity(2 * edges.len());
        for (k, &(s, d, w)) in edges.iter().enumerate() {
            debug_assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            pairs.push((s, 2 * k as u64));
            pairs.push((d, 2 * k as u64 + 1));
        }
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        let mut order: Vec<(u64, NodeId)> = pairs.iter().map(|&(id, slot)| (slot, id)).collect();
        order.sort_unstable();
        let new_node_ids: Vec<NodeId> = order.iter().map(|&(_, id)| id).collect();

        let mut lookup: Vec<(NodeId, u32)> = new_node_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        lookup.sort_unstable();
        let resolve = |id: NodeId| -> u32 {
            let at = lookup
                .binary_search_by_key(&id, |&(id, _)| id)
                .expect("endpoint interned");
            lookup[at].1
        };
        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        let mut weight = Vec::with_capacity(edges.len());
        for &(s, d, w) in &edges {
            src.push(resolve(s));
            dst.push(resolve(d));
            weight.push(w);
        }
        let new_to_old = new_node_ids
            .iter()
            .map(|&id| {
                graph
                    .index_of(id)
                    .expect("surviving endpoint known to the graph")
            })
            .collect();
        CsrEvict {
            directed: graph.is_directed(),
            new_node_ids,
            new_to_old: Some(new_to_old),
            touched,
            src,
            dst,
            weight,
        }
    }

    /// Whether the eviction targets a directed graph.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of surviving edges.
    pub fn surviving_edge_count(&self) -> usize {
        self.src.len()
    }

    /// The node table after the eviction (dense index = position).
    pub fn new_node_ids(&self) -> &[NodeId] {
        &self.new_node_ids
    }
}

impl CsrGraph {
    /// Remove evicted edges from this frozen graph, producing the frozen
    /// graph of the surviving edge list — **bit-identical to a one-shot
    /// columnar build over the survivors**, at any thread count. See the
    /// [module docs](self) for the contract and why it holds.
    ///
    /// Untouched rows are copied (weights bit-for-bit, targets remapped
    /// through the compaction); touched rows re-fold from their surviving
    /// bucket; `total_weight` re-folds over the full surviving column.
    ///
    /// # Panics
    ///
    /// If the eviction's directedness or node table is incompatible with
    /// this graph, or a touched id is unknown to it.
    pub fn apply_evict(&self, evict: &CsrEvict, threads: Option<usize>) -> CsrGraph {
        assert_eq!(
            self.is_directed(),
            evict.directed,
            "evict directedness mismatch"
        );
        let n_old = self.node_count();
        let n_new = evict.new_node_ids.len();
        match &evict.new_to_old {
            None => {
                assert_eq!(
                    self.node_ids(),
                    &evict.new_node_ids[..],
                    "evict node table must equal the graph's when no node was dropped"
                );
            }
            Some(map) => {
                assert_eq!(map.len(), n_new, "new_to_old must cover every new node");
                for (nu, &ou) in map.iter().enumerate() {
                    assert_eq!(
                        evict.new_node_ids[nu],
                        self.node_ids()[ou as usize],
                        "new_to_old must preserve node ids"
                    );
                }
            }
        }
        let threads = par::thread_count(threads);

        // Old index behind each new row, and the inverse for target
        // remapping (u32::MAX = dropped).
        let mut old_to_new = vec![u32::MAX; n_old];
        match &evict.new_to_old {
            Some(map) => {
                for (nu, &ou) in map.iter().enumerate() {
                    old_to_new[ou as usize] = nu as u32;
                }
            }
            None => {
                for (ou, slot) in old_to_new.iter_mut().enumerate() {
                    *slot = ou as u32;
                }
            }
        }
        // Touched rows in the new index space (a touched node whose last
        // edge expired is simply gone from the new table).
        let mut touched_new = vec![false; n_new];
        for &id in &evict.touched {
            let ou = self.index_of(id).expect("touched id known to the graph");
            let nu = old_to_new[ou as usize];
            if nu != u32::MAX {
                touched_new[nu as usize] = true;
            }
        }

        // The rebuild's total weight is an insertion-order fold over the
        // surviving column — removal invalidates the stored fold's
        // suffixes, so it cannot be continued like the delta path's.
        let mut total_weight = 0.0f64;
        for &w in &evict.weight {
            total_weight += w;
        }

        let new_to_old = evict.new_to_old.as_deref();
        let out_half = half_edges(&evict.src, &evict.dst, &evict.weight, self.is_directed());
        let (offsets, targets, weights, pairs_once) = refold_rows(
            n_new,
            new_to_old,
            &old_to_new,
            &touched_new,
            |ou| self.row(ou),
            self.offsets(),
            &out_half,
            threads,
        );
        let (in_offsets, in_targets, in_weights) = if self.is_directed() {
            let in_half = half_edges(&evict.dst, &evict.src, &evict.weight, true);
            let (io, it, iw, _) = refold_rows(
                n_new,
                new_to_old,
                &old_to_new,
                &touched_new,
                |ou| self.in_row(ou),
                self.in_offsets(),
                &in_half,
                threads,
            );
            (io, it, iw)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let edge_count = if self.is_directed() {
            targets.len()
        } else {
            pairs_once
        };

        CsrGraph::from_parts(
            CsrParts {
                directed: self.is_directed(),
                node_ids: evict.new_node_ids.clone(),
                offsets,
                targets,
                weights,
                in_offsets,
                in_targets,
                in_weights,
                edge_count,
                total_weight,
            },
            threads,
        )
    }
}

/// Rebuild the row structure after an eviction: touched rows re-fold from
/// their surviving half-edge bucket (the builder's stable-sort + adjacent
/// merge), untouched rows copy their stored merged entries with targets
/// remapped — and re-sorted, which under a permuting remap reproduces the
/// rebuild's sorted order because merged targets are unique per row.
/// Returns `(offsets, targets, weights, pairs_once)` with the same
/// conventions as the full build's row packing.
#[allow(clippy::too_many_arguments)]
fn refold_rows<'g, F>(
    n_new: usize,
    new_to_old: Option<&[u32]>,
    old_to_new: &[u32],
    touched: &[bool],
    old_row: F,
    old_offsets: &[u32],
    half: &HalfEdges,
    threads: usize,
) -> (Vec<u32>, Vec<u32>, Vec<f64>, usize)
where
    F: Fn(usize) -> (&'g [u32], &'g [f64]) + Sync,
{
    let h = half.row.len();
    assert!(h <= u32::MAX as usize, "half-edge space exceeds u32");

    // Bucket the surviving half-edges of the *touched* rows only: a
    // parallel counting pass over fixed uniform chunks (merged in chunk
    // order, as in the full build), then one stable forward scatter so
    // every touched bucket keeps global insertion order.
    let chunks = par::RowChunks::uniform(h, 16);
    let histograms = par::par_map(&chunks, threads, |_, range| {
        let mut counts = vec![0u32; n_new];
        for i in range {
            let r = half.row[i] as usize;
            if touched[r] {
                counts[r] += 1;
            }
        }
        counts
    });
    let mut bucket_offsets = vec![0u32; n_new + 1];
    for counts in &histograms {
        for (u, &c) in counts.iter().enumerate() {
            bucket_offsets[u + 1] += c;
        }
    }
    for u in 0..n_new {
        bucket_offsets[u + 1] += bucket_offsets[u];
    }
    let touched_h = *bucket_offsets.last().unwrap() as usize;
    let mut bucket_col = vec![0u32; touched_h];
    let mut bucket_w = vec![0.0f64; touched_h];
    let mut cursor: Vec<u32> = bucket_offsets[..n_new].to_vec();
    for i in 0..h {
        let r = half.row[i] as usize;
        if !touched[r] {
            continue;
        }
        let p = cursor[r] as usize;
        cursor[r] += 1;
        bucket_col[p] = half.col[i];
        bucket_w[p] = half.weight[i];
    }

    // Provisional per-row entry counts drive the chunk balance; they
    // depend only on the graph and the eviction, never the thread count.
    let mut prov = Vec::with_capacity(n_new + 1);
    prov.push(0u32);
    for u in 0..n_new {
        let len = if touched[u] {
            bucket_offsets[u + 1] - bucket_offsets[u]
        } else {
            let ou = match new_to_old {
                Some(map) => map[u] as usize,
                None => u,
            };
            old_offsets[ou + 1] - old_offsets[ou]
        };
        prov.push(prov[u] + len);
    }

    let row_chunks = par::RowChunks::balanced(&prov, 64, 4096);
    let merged = par::par_map(&row_chunks, threads, |_, range| {
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut lens = Vec::with_capacity(range.len());
        let mut pairs_once = 0usize;
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for u in range {
            let before = targets.len();
            if touched[u] {
                // Re-fold from the surviving bucket: stable sort by
                // target (equal targets keep insertion order), adjacent
                // merge summing in that order — the builder's row merge.
                let lo = bucket_offsets[u] as usize;
                let hi = bucket_offsets[u + 1] as usize;
                scratch.clear();
                scratch.extend(
                    bucket_col[lo..hi]
                        .iter()
                        .copied()
                        .zip(bucket_w[lo..hi].iter().copied()),
                );
                scratch.sort_by_key(|&(col, _)| col);
                let mut i = 0usize;
                while i < scratch.len() {
                    let col = scratch[i].0;
                    let mut acc = 0.0f64;
                    while i < scratch.len() && scratch[i].0 == col {
                        acc += scratch[i].1;
                        i += 1;
                    }
                    targets.push(col);
                    weights.push(acc);
                    if u as u32 <= col {
                        pairs_once += 1;
                    }
                }
            } else {
                // Untouched row: its surviving bucket equals its original
                // bucket, so the stored merged entries are the rebuild's
                // bits. Copy, remapping targets; a permuting remap
                // unsorts them, so re-sort the (unique-target) pairs.
                let ou = match new_to_old {
                    Some(map) => map[u] as usize,
                    None => u,
                };
                let (ot, ow) = old_row(ou);
                match new_to_old {
                    None => {
                        targets.extend_from_slice(ot);
                        weights.extend_from_slice(ow);
                    }
                    Some(_) => {
                        scratch.clear();
                        scratch.extend(ot.iter().zip(ow).map(|(&c, &w)| {
                            let nc = old_to_new[c as usize];
                            debug_assert!(
                                nc != u32::MAX,
                                "untouched row references a dropped node"
                            );
                            (nc, w)
                        }));
                        scratch.sort_unstable_by_key(|&(col, _)| col);
                        targets.extend(scratch.iter().map(|&(c, _)| c));
                        weights.extend(scratch.iter().map(|&(_, w)| w));
                    }
                }
                let row_tail = &targets[before..];
                pairs_once += row_tail.len() - row_tail.partition_point(|&c| (c as usize) < u);
            }
            lens.push((targets.len() - before) as u32);
        }
        (targets, weights, lens, pairs_once)
    });

    let mut final_offsets = Vec::with_capacity(n_new + 1);
    final_offsets.push(0u32);
    let mut final_targets = Vec::new();
    let mut final_weights = Vec::new();
    let mut pairs_once = 0usize;
    for (targets, weights, lens, pairs) in merged {
        for len in lens {
            final_offsets.push(final_offsets.last().unwrap() + len);
        }
        final_targets.extend(targets);
        final_weights.extend(weights);
        pairs_once += pairs;
    }
    while final_offsets.len() < n_new + 1 {
        final_offsets.push(*final_offsets.last().unwrap());
    }
    (final_offsets, final_targets, final_weights, pairs_once)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dense_csr, CsrBuilder};

    /// Bit-strict equality between two frozen graphs (the evict contract).
    fn assert_identical(got: &CsrGraph, want: &CsrGraph) {
        assert_eq!(got, want);
        assert_eq!(got.total_weight().to_bits(), want.total_weight().to_bits());
        for u in 0..want.node_count() {
            let (gt, gw) = got.row(u);
            let (wt, ww) = want.row(u);
            assert_eq!(gt, wt, "row {u} targets");
            for (a, b) in gw.iter().zip(ww) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {u} weights");
            }
            assert_eq!(got.strength(u).to_bits(), want.strength(u).to_bits());
            assert_eq!(
                got.weighted_degree(u).to_bits(),
                want.weighted_degree(u).to_bits()
            );
            assert_eq!(got.self_loop(u).to_bits(), want.self_loop(u).to_bits());
            let (git, giw) = got.in_row(u);
            let (wit, wiw) = want.in_row(u);
            assert_eq!(git, wit, "in-row {u} targets");
            for (a, b) in giw.iter().zip(wiw) {
                assert_eq!(a.to_bits(), b.to_bits(), "in-row {u} weights");
            }
        }
    }

    /// Pseudo-random dense edge columns over `n` nodes.
    fn random_edges(n: u32, m: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        let mut x = seed | 1;
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            src.push(((x >> 33) % n as u64) as u32);
            dst.push(((x >> 17) % n as u64) as u32);
            w.push(((x >> 3) % 1000) as f64 / 64.0 + 0.25);
        }
        (src, dst, w)
    }

    /// Evict every edge whose slot fails `keep`, compacting the sorted
    /// node table to the referenced subset, and compare `apply_evict`
    /// against a one-shot rebuild over the survivors.
    fn check_dense_evict(
        directed: bool,
        node_ids: &[NodeId],
        src: &[u32],
        dst: &[u32],
        w: &[f64],
        keep: impl Fn(usize) -> bool,
    ) {
        let n = node_ids.len();
        let base = build_dense_csr(directed, node_ids.to_vec(), src, dst, w, Some(2));
        let mut touched: Vec<NodeId> = Vec::new();
        let (mut ss, mut sd, mut sw) = (Vec::new(), Vec::new(), Vec::new());
        for k in 0..src.len() {
            if keep(k) {
                ss.push(src[k]);
                sd.push(dst[k]);
                sw.push(w[k]);
            } else {
                touched.push(node_ids[src[k] as usize]);
                touched.push(node_ids[dst[k] as usize]);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        // Compact to referenced nodes (sorted subset → monotone remap).
        let mut referenced = vec![false; n];
        for &e in ss.iter().chain(&sd) {
            referenced[e as usize] = true;
        }
        let mut new_ids = Vec::new();
        let mut new_to_old = Vec::new();
        let mut remap = vec![u32::MAX; n];
        for u in 0..n {
            if referenced[u] {
                remap[u] = new_ids.len() as u32;
                new_to_old.push(u as u32);
                new_ids.push(node_ids[u]);
            }
        }
        for e in ss.iter_mut().chain(&mut sd) {
            *e = remap[*e as usize];
        }
        let dropped_any = new_ids.len() < n;
        let evict = CsrEvict::from_dense(
            directed,
            new_ids.clone(),
            dropped_any.then_some(new_to_old),
            touched,
            &ss,
            &sd,
            &sw,
        );
        assert_eq!(evict.is_directed(), directed);
        assert_eq!(evict.surviving_edge_count(), ss.len());
        assert_eq!(evict.new_node_ids(), &new_ids[..]);
        let want = build_dense_csr(directed, new_ids, &ss, &sd, &sw, Some(1));
        for threads in [1usize, 2, 4] {
            assert_identical(&base.apply_evict(&evict, Some(threads)), &want);
        }
    }

    #[test]
    fn dense_evict_matches_rebuild_over_survivors() {
        let node_ids: Vec<NodeId> = (0..60).map(|i| 5 * i + 2).collect();
        let (src, dst, w) = random_edges(60, 500, 11);
        for directed in [false, true] {
            // Drop roughly a third of the edges.
            check_dense_evict(directed, &node_ids, &src, &dst, &w, |k| k % 3 != 0);
        }
    }

    #[test]
    fn dense_evict_everything_leaves_an_empty_graph() {
        let node_ids: Vec<NodeId> = (0..10).collect();
        let (src, dst, w) = random_edges(10, 40, 3);
        for directed in [false, true] {
            check_dense_evict(directed, &node_ids, &src, &dst, &w, |_| false);
        }
    }

    #[test]
    fn dense_evict_nothing_reproduces_the_graph() {
        let node_ids: Vec<NodeId> = (0..12).collect();
        let (src, dst, w) = random_edges(12, 80, 17);
        for directed in [false, true] {
            let base = build_dense_csr(directed, node_ids.clone(), &src, &dst, &w, Some(2));
            let evict =
                CsrEvict::from_dense(directed, node_ids.clone(), None, Vec::new(), &src, &dst, &w);
            assert_identical(&base.apply_evict(&evict, Some(3)), &base);
        }
    }

    #[test]
    fn pinned_evict_keeps_isolated_rows() {
        // Node 2's only edge is evicted but the table is pinned: its row
        // must survive, empty — like a rebuild seeded with the full set.
        let node_ids: Vec<NodeId> = vec![10, 20, 30];
        let src = [0u32, 2, 0];
        let dst = [1u32, 0, 1];
        let w = [1.0, 2.0, 0.5];
        let base = build_dense_csr(false, node_ids.clone(), &src, &dst, &w, Some(1));
        let evict = CsrEvict::from_dense(
            false,
            node_ids.clone(),
            None,
            vec![30, 10],
            &[0, 0],
            &[1, 1],
            &[1.0, 0.5],
        );
        let got = base.apply_evict(&evict, Some(2));
        let want = build_dense_csr(false, node_ids, &[0, 0], &[1, 1], &[1.0, 0.5], Some(1));
        assert_identical(&got, &want);
        assert_eq!(got.degree(2), 0);
    }

    #[test]
    fn retrench_matches_builder_rebuild_with_permuted_intern() {
        // Node 5 is first interned by the first (evicted) edge and only
        // referenced again later: the rebuild's table permutes. Node 9
        // disappears entirely.
        let edges = [
            (5u64, 9u64, 1.5), // evicted — 5's and 9's first appearance
            (7, 8, 2.0),
            (8, 5, 0.25), // re-interns 5 after 7 and 8
            (7, 7, 1.0),
        ];
        for directed in [false, true] {
            let mk = |list: &[(u64, u64, f64)]| {
                let mut b = if directed {
                    CsrBuilder::directed()
                } else {
                    CsrBuilder::undirected()
                };
                for &(s, d, w) in list {
                    b.push(s, d, w);
                }
                b.build()
            };
            let base = mk(&edges);
            let survivors = &edges[1..];
            let want = mk(survivors);
            assert_eq!(want.node_ids(), &[7, 8, 5]);
            let evict = CsrEvict::retrench_by_id(&base, survivors.iter().copied(), vec![5, 9]);
            for threads in [1usize, 2, 4] {
                assert_identical(&base.apply_evict(&evict, Some(threads)), &want);
            }
        }
    }

    #[test]
    fn retrench_everything_empties_the_graph() {
        let mut b = CsrBuilder::undirected();
        b.push(1, 2, 1.0);
        b.push(2, 3, 2.0);
        let base = b.build();
        let evict = CsrEvict::retrench_by_id(&base, std::iter::empty(), vec![1, 2, 3]);
        let got = base.apply_evict(&evict, Some(2));
        assert!(got.is_empty());
        assert_eq!(got.total_weight(), 0.0);
        assert_identical(&got, &CsrBuilder::undirected().build());
    }

    #[test]
    fn evict_chain_matches_one_shot_rebuild() {
        // Alternate evictions at several thread counts: always equal to
        // the rebuild over the current survivors, bitwise.
        let node_ids: Vec<NodeId> = (0..32).map(|i| i * 2 + 1).collect();
        let (src, dst, w) = random_edges(32, 240, 77);
        let mut alive: Vec<usize> = (0..src.len()).collect();
        let mut g = build_dense_csr(true, node_ids.clone(), &src, &dst, &w, Some(2));
        let mut ids = node_ids.clone();
        for round in 0..3usize {
            let dropped: Vec<usize> = alive.iter().copied().filter(|k| k % 5 == round).collect();
            alive.retain(|k| k % 5 != round);
            let mut touched: Vec<NodeId> = dropped
                .iter()
                .flat_map(|&k| [node_ids[src[k] as usize], node_ids[dst[k] as usize]])
                .collect();
            touched.sort_unstable();
            touched.dedup();
            // Survivor columns in the compacted space.
            let mut referenced = vec![false; ids.len()];
            let idx = |id: NodeId, table: &[NodeId]| {
                table.binary_search(&id).expect("sorted table") as u32
            };
            for &k in &alive {
                referenced[idx(node_ids[src[k] as usize], &ids) as usize] = true;
                referenced[idx(node_ids[dst[k] as usize], &ids) as usize] = true;
            }
            let mut new_ids = Vec::new();
            let mut new_to_old = Vec::new();
            for (u, &id) in ids.iter().enumerate() {
                if referenced[u] {
                    new_to_old.push(u as u32);
                    new_ids.push(id);
                }
            }
            let (mut ss, mut sd, mut sw) = (Vec::new(), Vec::new(), Vec::new());
            for &k in &alive {
                ss.push(idx(node_ids[src[k] as usize], &new_ids));
                sd.push(idx(node_ids[dst[k] as usize], &new_ids));
                sw.push(w[k]);
            }
            let evict = CsrEvict::from_dense(
                true,
                new_ids.clone(),
                (new_ids.len() < ids.len()).then_some(new_to_old),
                touched,
                &ss,
                &sd,
                &sw,
            );
            g = g.apply_evict(&evict, Some(round + 1));
            let want = build_dense_csr(true, new_ids.clone(), &ss, &sd, &sw, Some(1));
            assert_identical(&g, &want);
            ids = new_ids;
        }
    }

    #[test]
    #[should_panic(expected = "directedness")]
    fn mismatched_directedness_panics() {
        let base = build_dense_csr(true, vec![1, 2], &[0], &[1], &[1.0], Some(1));
        let evict = CsrEvict::from_dense(false, vec![1, 2], None, Vec::new(), &[], &[], &[]);
        base.apply_evict(&evict, None);
    }

    #[test]
    #[should_panic(expected = "node table")]
    fn incompatible_node_table_panics() {
        let base = build_dense_csr(true, vec![1, 2], &[0], &[1], &[1.0], Some(1));
        let evict = CsrEvict::from_dense(true, vec![2, 1], None, Vec::new(), &[], &[], &[]);
        base.apply_evict(&evict, None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_dense_map_panics() {
        CsrEvict::from_dense(
            false,
            vec![1, 2],
            Some(vec![1, 0]),
            Vec::new(),
            &[],
            &[],
            &[],
        );
    }
}
