//! Projection of a raw multi-edge property graph into weighted graphs.
//!
//! The paper builds three "network structures" over the same station set
//! (§IV-C): `GBasic` collapses every trip between a pair of stations into a
//! single weighted edge; `GDay` and `GHour` keep one weighted edge per
//! (station-pair, temporal-key) combination, where the key is the day of the
//! week or the hour of the day the trip started. This module implements that
//! projection generically: the caller supplies a function that maps each raw
//! relationship to an optional grouping key.

use crate::{EdgeRecord, GraphStore, NodeId, WeightedGraph};
use std::collections::HashMap;

/// Summary of a projection run, useful for the paper's Table II-style
/// accounting of nodes / edges / loops / trips.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggregateSummary {
    /// Nodes in the projected graph.
    pub nodes: usize,
    /// Distinct undirected station pairs (including self-pairs).
    pub undirected_edges: usize,
    /// Distinct undirected station pairs excluding self-pairs.
    pub undirected_edges_no_loops: usize,
    /// Distinct directed (src, dst) pairs (including self-loops).
    pub directed_edges: usize,
    /// Distinct directed (src, dst) pairs excluding self-loops.
    pub directed_edges_no_loops: usize,
    /// Total raw relationships (trips) aggregated.
    pub trips: usize,
}

/// Aggregate every relationship with `edge_label` in `store` into a
/// **directed** weighted graph: one edge per distinct `(src, dst)` pair,
/// weighted by the number of relationships.
///
/// Nodes present in the store but without any matching relationship are
/// still added, so isolated stations remain visible to downstream metrics.
pub fn project_directed(store: &GraphStore, edge_label: &str) -> WeightedGraph {
    let mut g = WeightedGraph::new_directed();
    for id in store.node_ids_sorted() {
        g.add_node(id);
    }
    for e in store.edges_with_label(edge_label) {
        g.add_edge(e.src, e.dst, 1.0);
    }
    g
}

/// Aggregate into an **undirected** weighted graph: one edge per unordered
/// station pair, weighted by the number of relationships in either
/// direction. This is the paper's `GBasic`.
pub fn project_undirected(store: &GraphStore, edge_label: &str) -> WeightedGraph {
    let mut g = WeightedGraph::new_undirected();
    for id in store.node_ids_sorted() {
        g.add_node(id);
    }
    for e in store.edges_with_label(edge_label) {
        g.add_edge(e.src, e.dst, 1.0);
    }
    g
}

/// Aggregate relationships into an undirected weighted graph **per temporal
/// key**, the construction behind `GDay` / `GHour`.
///
/// `key_fn` maps each relationship to `Some(key)` (e.g. weekday 0–6 or hour
/// 0–23) or `None` to skip it. The result maps each key to the weighted
/// graph of trips that carry it. Every graph contains the full node set so
/// that community structures remain comparable across keys.
pub fn project_by_key<F>(
    store: &GraphStore,
    edge_label: &str,
    key_fn: F,
) -> HashMap<u32, WeightedGraph>
where
    F: Fn(&EdgeRecord) -> Option<u32>,
{
    let mut out: HashMap<u32, WeightedGraph> = HashMap::new();
    let node_ids = store.node_ids_sorted();
    for e in store.edges_with_label(edge_label) {
        let Some(key) = key_fn(e) else { continue };
        let g = out.entry(key).or_insert_with(|| {
            let mut g = WeightedGraph::new_undirected();
            for &id in &node_ids {
                g.add_node(id);
            }
            g
        });
        g.add_edge(e.src, e.dst, 1.0);
    }
    out
}

/// Build a single **layered** undirected graph where each node is a
/// `(station, key)` pair encoded as `station_id * stride + key`.
///
/// This mirrors how the paper attaches temporal properties to edges and then
/// lets the community detector see temporally distinct interaction patterns:
/// two stations that exchange trips only in the morning land in a different
/// layer from two that exchange trips only at the weekend.
///
/// `stride` must exceed the largest key (use e.g. 32 for hours, 8 for
/// weekdays). Returns the graph plus a reverse mapping from layered node id
/// to `(station, key)`.
pub fn project_layered<F>(
    store: &GraphStore,
    edge_label: &str,
    stride: u64,
    key_fn: F,
) -> (WeightedGraph, HashMap<NodeId, (NodeId, u32)>)
where
    F: Fn(&EdgeRecord) -> Option<u32>,
{
    let mut g = WeightedGraph::new_undirected();
    let mut reverse = HashMap::new();
    for e in store.edges_with_label(edge_label) {
        let Some(key) = key_fn(e) else { continue };
        debug_assert!((key as u64) < stride, "key {key} exceeds stride {stride}");
        let src = e.src * stride + key as u64;
        let dst = e.dst * stride + key as u64;
        reverse.insert(src, (e.src, key));
        reverse.insert(dst, (e.dst, key));
        g.add_edge(src, dst, 1.0);
    }
    (g, reverse)
}

/// Compute the Table II-style summary counts for the relationships with
/// `edge_label` in the store.
pub fn summarize(store: &GraphStore, edge_label: &str) -> AggregateSummary {
    use std::collections::HashSet;
    let mut directed: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut undirected: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut trips = 0usize;
    for e in store.edges_with_label(edge_label) {
        trips += 1;
        directed.insert((e.src, e.dst));
        let key = if e.src <= e.dst {
            (e.src, e.dst)
        } else {
            (e.dst, e.src)
        };
        undirected.insert(key);
    }
    let directed_loops = directed.iter().filter(|(s, d)| s == d).count();
    let undirected_loops = undirected.iter().filter(|(s, d)| s == d).count();
    AggregateSummary {
        nodes: store.node_count(),
        undirected_edges: undirected.len(),
        undirected_edges_no_loops: undirected.len() - undirected_loops,
        directed_edges: directed.len(),
        directed_edges_no_loops: directed.len() - directed_loops,
        trips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{props, PropMap, PropValue};

    fn store_with_trips() -> GraphStore {
        let mut s = GraphStore::new();
        for id in 1..=4u64 {
            s.add_node(id, "Station", PropMap::new());
        }
        // 3 trips 1->2, 1 trip 2->1, 2 self-loops at 3, 1 trip 3->4.
        let trips: &[(u64, u64, i64, i64)] = &[
            (1, 2, 0, 8),
            (1, 2, 1, 9),
            (1, 2, 5, 14),
            (2, 1, 2, 17),
            (3, 3, 6, 11),
            (3, 3, 6, 12),
            (3, 4, 3, 8),
        ];
        for &(src, dst, day, hour) in trips {
            s.add_edge(
                src,
                dst,
                "TRIP",
                props([
                    ("day", PropValue::from(day)),
                    ("hour", PropValue::from(hour)),
                ]),
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn directed_projection_weights_by_trip_count() {
        let s = store_with_trips();
        let g = project_directed(&s, "TRIP");
        assert!(g.is_directed());
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_weight(1, 2), Some(3.0));
        assert_eq!(g.edge_weight(2, 1), Some(1.0));
        assert_eq!(g.edge_weight(3, 3), Some(2.0));
        assert_eq!(g.edge_weight(3, 4), Some(1.0));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn undirected_projection_merges_directions() {
        let s = store_with_trips();
        let g = project_undirected(&s, "TRIP");
        assert!(!g.is_directed());
        assert_eq!(g.edge_weight(1, 2), Some(4.0));
        assert_eq!(g.edge_weight(2, 1), Some(4.0));
        assert_eq!(g.self_loop_weight(3), 2.0);
        assert_eq!(g.total_weight(), 7.0);
    }

    #[test]
    fn isolated_nodes_are_kept() {
        let mut s = store_with_trips();
        s.add_node(99, "Station", PropMap::new());
        let g = project_undirected(&s, "TRIP");
        assert!(g.contains(99));
        assert_eq!(g.degree_of(99), Some(0));
    }

    #[test]
    fn project_by_key_splits_trips() {
        let s = store_with_trips();
        let by_day = project_by_key(&s, "TRIP", |e| {
            e.props
                .get("day")
                .and_then(|v| v.as_int())
                .map(|d| d as u32)
        });
        // Days used: 0, 1, 5, 2, 6, 3 -> 6 distinct keys.
        assert_eq!(by_day.len(), 6);
        let day0 = &by_day[&0];
        assert_eq!(day0.edge_weight(1, 2), Some(1.0));
        // Full node set present in every layer.
        assert_eq!(day0.node_count(), 4);
        // Total weight across layers equals total trips.
        let total: f64 = by_day.values().map(|g| g.total_weight()).sum();
        assert_eq!(total, 7.0);
    }

    #[test]
    fn project_by_key_skips_none() {
        let s = store_with_trips();
        let by_hour = project_by_key(&s, "TRIP", |e| {
            let h = e.props.get("hour").and_then(|v| v.as_int()).unwrap_or(0);
            if h < 9 {
                None
            } else {
                Some(h as u32)
            }
        });
        let total: f64 = by_hour.values().map(|g| g.total_weight()).sum();
        // Trips at hours >= 9: 9, 14, 17, 11, 12 -> 5 trips.
        assert_eq!(total, 5.0);
    }

    #[test]
    fn layered_projection_encodes_station_and_key() {
        let s = store_with_trips();
        let (g, reverse) = project_layered(&s, "TRIP", 32, |e| {
            e.props
                .get("hour")
                .and_then(|v| v.as_int())
                .map(|h| h as u32)
        });
        // Trip 1->2 at hour 8 becomes edge (1*32+8, 2*32+8).
        assert_eq!(g.edge_weight(1 * 32 + 8, 2 * 32 + 8), Some(1.0));
        assert_eq!(reverse[&(1 * 32 + 8)], (1, 8));
        assert_eq!(reverse[&(2 * 32 + 8)], (2, 8));
    }

    #[test]
    fn summary_counts_match_table_semantics() {
        let s = store_with_trips();
        let sum = summarize(&s, "TRIP");
        assert_eq!(sum.nodes, 4);
        assert_eq!(sum.trips, 7);
        // Directed pairs: (1,2), (2,1), (3,3), (3,4) = 4; minus loop = 3.
        assert_eq!(sum.directed_edges, 4);
        assert_eq!(sum.directed_edges_no_loops, 3);
        // Undirected pairs: {1,2}, {3,3}, {3,4} = 3; minus loop = 2.
        assert_eq!(sum.undirected_edges, 3);
        assert_eq!(sum.undirected_edges_no_loops, 2);
    }

    #[test]
    fn summary_of_missing_label_is_empty() {
        let s = store_with_trips();
        let sum = summarize(&s, "NOPE");
        assert_eq!(sum.trips, 0);
        assert_eq!(sum.directed_edges, 0);
        assert_eq!(sum.nodes, 4);
    }
}
