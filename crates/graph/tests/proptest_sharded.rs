//! Property tests for the **shard independence contract**: on arbitrary
//! dense edge columns, the sharded construction path must produce a
//! graph **bit-identical** to the unsharded [`build_dense_csr`] — same
//! dense node table, same offsets/targets, bit-identical merged weights
//! and cached degrees — at every `(shards, threads)` combination in
//! {1, 2, 4} × {1, 2, 4}, directed and undirected, and [`apply_delta`]
//! must treat a sharded-built base exactly like an unsharded one across
//! a chain of batches.
//!
//! [`apply_delta`]: CsrGraph::apply_delta

use moby_graph::{build_dense_csr, build_dense_csr_sharded, CsrBuilder, CsrDelta, CsrGraph};
use proptest::prelude::*;

/// Random dense edge columns over a small sorted station table:
/// `(node_ids, src, dst, weight)` with duplicates and self-loops
/// occurring naturally. Ids are sparse (`i * 1_000 + 7`) so nothing
/// accidentally relies on ids being dense indices.
fn dense_columns() -> impl Strategy<Value = (Vec<u64>, Vec<u32>, Vec<u32>, Vec<f64>)> {
    let edges = prop::collection::vec((0u32..1_000, 0u32..1_000, 0.25f64..8.0), 1..260);
    (2u32..40, edges).prop_map(|(n, edges)| {
        let node_ids: Vec<u64> = (0..u64::from(n)).map(|i| i * 1_000 + 7).collect();
        let src: Vec<u32> = edges.iter().map(|&(s, _, _)| s % n).collect();
        let dst: Vec<u32> = edges.iter().map(|&(_, d, _)| d % n).collect();
        let weight: Vec<f64> = edges.iter().map(|&(_, _, w)| w).collect();
        (node_ids, src, dst, weight)
    })
}

/// Strict equality: the derived `PartialEq` plus bit-level comparison of
/// every weight column and cached degree (`==` would let `0.0 == -0.0`
/// slip through).
fn assert_bit_identical(sharded: &CsrGraph, baseline: &CsrGraph) {
    assert_eq!(sharded, baseline);
    assert_eq!(sharded.node_ids(), baseline.node_ids());
    assert_eq!(sharded.edge_count(), baseline.edge_count());
    assert_eq!(
        sharded.total_weight().to_bits(),
        baseline.total_weight().to_bits()
    );
    for u in 0..baseline.node_count() {
        let (st, sw) = sharded.row(u);
        let (bt, bw) = baseline.row(u);
        assert_eq!(st, bt, "row {u} targets");
        for (a, b) in sw.iter().zip(bw) {
            assert_eq!(a.to_bits(), b.to_bits(), "row {u} merged weight");
        }
        let (sit, siw) = sharded.in_row(u);
        let (bit, biw) = baseline.in_row(u);
        assert_eq!(sit, bit, "in-row {u} targets");
        for (a, b) in siw.iter().zip(biw) {
            assert_eq!(a.to_bits(), b.to_bits(), "in-row {u} merged weight");
        }
        assert_eq!(
            sharded.strength(u).to_bits(),
            baseline.strength(u).to_bits()
        );
        assert_eq!(
            sharded.weighted_degree(u).to_bits(),
            baseline.weighted_degree(u).to_bits()
        );
        assert_eq!(
            sharded.self_loop(u).to_bits(),
            baseline.self_loop(u).to_bits()
        );
    }
}

const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense builds: every `(shards, threads)` grid point reproduces the
    /// unsharded single-thread build bit for bit.
    #[test]
    fn sharded_dense_build_is_shard_and_thread_independent(
        cols in dense_columns(),
        directed in 0u8..2,
    ) {
        let (node_ids, src, dst, weight) = cols;
        let directed = directed == 1;
        let baseline =
            build_dense_csr(directed, node_ids.clone(), &src, &dst, &weight, Some(1));
        for shards in SHARDS {
            for threads in THREADS {
                let sharded = build_dense_csr_sharded(
                    directed,
                    node_ids.clone(),
                    &src,
                    &dst,
                    &weight,
                    Some(shards),
                    Some(threads),
                );
                assert_bit_identical(&sharded, &baseline);
            }
        }
    }

    /// The first-appearance-interning builder honours the same contract
    /// through [`CsrBuilder::shards`].
    #[test]
    fn sharded_builder_is_shard_and_thread_independent(
        cols in dense_columns(),
        directed in 0u8..2,
    ) {
        let (node_ids, src, dst, weight) = cols;
        let directed = directed == 1;
        let push_all = |builder: &mut CsrBuilder| {
            for k in 0..src.len() {
                builder.push(
                    node_ids[src[k] as usize],
                    node_ids[dst[k] as usize],
                    weight[k],
                );
            }
        };
        let mut base = if directed {
            CsrBuilder::directed()
        } else {
            CsrBuilder::undirected()
        };
        push_all(&mut base);
        let baseline = base.build();
        for shards in SHARDS {
            for threads in THREADS {
                let mut b = if directed {
                    CsrBuilder::directed()
                } else {
                    CsrBuilder::undirected()
                }
                .shards(Some(shards))
                .threads(Some(threads));
                push_all(&mut b);
                assert_bit_identical(&b.build(), &baseline);
            }
        }
    }

    /// Delta chains on a **sharded-built base**: splitting the columns
    /// into a base plus two appended batches and applying each batch as a
    /// [`CsrDelta`] lands bit-identically on the one-shot unsharded
    /// rebuild of the full columns — sharding the base never leaks into
    /// the incremental path.
    #[test]
    fn apply_delta_on_sharded_base_matches_unsharded_rebuild(
        cols in dense_columns(),
        directed in 0u8..2,
        cut_a in 0usize..1000,
        cut_b in 0usize..1000,
    ) {
        let (node_ids, src, dst, weight) = cols;
        let directed = directed == 1;
        let m = src.len();
        let (mut a, mut b) = (cut_a % (m + 1), cut_b % (m + 1));
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let mut graph = build_dense_csr_sharded(
            directed,
            node_ids.clone(),
            &src[..a],
            &dst[..a],
            &weight[..a],
            Some(4),
            Some(2),
        );
        for batch in [a..b, b..m] {
            let delta = CsrDelta::from_dense(
                directed,
                node_ids.clone(),
                None,
                &src[batch.clone()],
                &dst[batch.clone()],
                &weight[batch],
            );
            graph = graph.apply_delta(&delta, Some(2));
        }
        let rebuilt = build_dense_csr(directed, node_ids, &src, &dst, &weight, Some(1));
        assert_bit_identical(&graph, &rebuilt);
    }
}
