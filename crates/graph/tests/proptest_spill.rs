//! Property tests for the **spill independence contract** (the fourth
//! determinism axis): on arbitrary dense edge columns, the out-of-core
//! spilled construction path must produce a graph **bit-identical** to
//! the in-memory [`build_dense_csr`] — same dense node table, same
//! offsets/targets, bit-identical merged weights, cached degrees and
//! total weight — at every `(shards, threads, budget)` combination,
//! directed and undirected, including a zero budget (spill everything)
//! and a huge budget (spill nothing). Delta and evict chains applied on
//! spill-built bases must land exactly where the in-memory rebuild does.
//!
//! [`apply_delta`]: CsrGraph::apply_delta

use moby_graph::{
    build_dense_csr, build_dense_csr_budgeted, CsrBuilder, CsrDelta, CsrEvict, CsrGraph,
};
use proptest::prelude::*;

/// Random dense edge columns over a small sorted station table:
/// `(node_ids, src, dst, weight)` with duplicates and self-loops
/// occurring naturally. Ids are sparse (`i * 1_000 + 7`) so nothing
/// accidentally relies on ids being dense indices.
fn dense_columns() -> impl Strategy<Value = (Vec<u64>, Vec<u32>, Vec<u32>, Vec<f64>)> {
    let edges = prop::collection::vec((0u32..1_000, 0u32..1_000, 0.25f64..8.0), 1..260);
    (2u32..40, edges).prop_map(|(n, edges)| {
        let node_ids: Vec<u64> = (0..u64::from(n)).map(|i| i * 1_000 + 7).collect();
        let src: Vec<u32> = edges.iter().map(|&(s, _, _)| s % n).collect();
        let dst: Vec<u32> = edges.iter().map(|&(_, d, _)| d % n).collect();
        let weight: Vec<f64> = edges.iter().map(|&(_, _, w)| w).collect();
        (node_ids, src, dst, weight)
    })
}

/// Strict equality: the derived `PartialEq` plus bit-level comparison of
/// every weight column and cached degree (`==` would let `0.0 == -0.0`
/// slip through).
fn assert_bit_identical(spilled: &CsrGraph, baseline: &CsrGraph) {
    assert_eq!(spilled, baseline);
    assert_eq!(spilled.node_ids(), baseline.node_ids());
    assert_eq!(spilled.edge_count(), baseline.edge_count());
    assert_eq!(
        spilled.total_weight().to_bits(),
        baseline.total_weight().to_bits()
    );
    for u in 0..baseline.node_count() {
        let (st, sw) = spilled.row(u);
        let (bt, bw) = baseline.row(u);
        assert_eq!(st, bt, "row {u} targets");
        for (a, b) in sw.iter().zip(bw) {
            assert_eq!(a.to_bits(), b.to_bits(), "row {u} merged weight");
        }
        let (sit, siw) = spilled.in_row(u);
        let (bit, biw) = baseline.in_row(u);
        assert_eq!(sit, bit, "in-row {u} targets");
        for (a, b) in siw.iter().zip(biw) {
            assert_eq!(a.to_bits(), b.to_bits(), "in-row {u} merged weight");
        }
        assert_eq!(
            spilled.strength(u).to_bits(),
            baseline.strength(u).to_bits()
        );
        assert_eq!(
            spilled.weighted_degree(u).to_bits(),
            baseline.weighted_degree(u).to_bits()
        );
        assert_eq!(
            spilled.self_loop(u).to_bits(),
            baseline.self_loop(u).to_bits()
        );
    }
}

const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 3] = [1, 2, 4];
/// Budgets in MB: `0` forces every half-edge to disk (the footprint of
/// any non-empty build exceeds zero bytes), the huge value guarantees
/// the in-memory branch — both must land on the same bits.
const BUDGETS_MB: [u64; 2] = [0, 1 << 20];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense builds: every `(shards, threads, budget)` grid point
    /// reproduces the in-memory single-thread build bit for bit.
    #[test]
    fn spilled_dense_build_is_budget_shard_and_thread_independent(
        cols in dense_columns(),
        directed in 0u8..2,
    ) {
        let (node_ids, src, dst, weight) = cols;
        let directed = directed == 1;
        let baseline =
            build_dense_csr(directed, node_ids.clone(), &src, &dst, &weight, Some(1));
        for budget_mb in BUDGETS_MB {
            for shards in SHARDS {
                for threads in THREADS {
                    let spilled = build_dense_csr_budgeted(
                        directed,
                        node_ids.clone(),
                        &src,
                        &dst,
                        &weight,
                        Some(shards),
                        Some(threads),
                        Some(budget_mb),
                        None,
                    )
                    .expect("spilled build");
                    assert_bit_identical(&spilled, &baseline);
                }
            }
        }
    }

    /// The first-appearance-interning builder honours the same contract
    /// through [`CsrBuilder::spill_budget`] / [`CsrBuilder::try_build`].
    #[test]
    fn spilled_builder_is_budget_shard_and_thread_independent(
        cols in dense_columns(),
        directed in 0u8..2,
    ) {
        let (node_ids, src, dst, weight) = cols;
        let directed = directed == 1;
        let push_all = |builder: &mut CsrBuilder| {
            for k in 0..src.len() {
                builder.push(
                    node_ids[src[k] as usize],
                    node_ids[dst[k] as usize],
                    weight[k],
                );
            }
        };
        let mut base = if directed {
            CsrBuilder::directed()
        } else {
            CsrBuilder::undirected()
        };
        push_all(&mut base);
        let baseline = base.build();
        for budget_mb in BUDGETS_MB {
            for shards in SHARDS {
                for threads in THREADS {
                    let mut b = if directed {
                        CsrBuilder::directed()
                    } else {
                        CsrBuilder::undirected()
                    }
                    .shards(Some(shards))
                    .threads(Some(threads))
                    .spill_budget(Some(budget_mb));
                    push_all(&mut b);
                    let built = b.try_build().expect("spilled builder build");
                    assert_bit_identical(&built, &baseline);
                }
            }
        }
    }

    /// Delta chains on a **spill-built base**: splitting the columns into
    /// a base plus two appended batches and applying each batch as a
    /// [`CsrDelta`] lands bit-identically on the one-shot in-memory
    /// rebuild of the full columns — spilling the base never leaks into
    /// the incremental path.
    #[test]
    fn apply_delta_on_spilled_base_matches_in_memory_rebuild(
        cols in dense_columns(),
        directed in 0u8..2,
        cut_a in 0usize..1000,
        cut_b in 0usize..1000,
    ) {
        let (node_ids, src, dst, weight) = cols;
        let directed = directed == 1;
        let m = src.len();
        let (mut a, mut b) = (cut_a % (m + 1), cut_b % (m + 1));
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let mut graph = build_dense_csr_budgeted(
            directed,
            node_ids.clone(),
            &src[..a],
            &dst[..a],
            &weight[..a],
            Some(4),
            Some(2),
            Some(0),
            None,
        )
        .expect("spilled base build");
        for batch in [a..b, b..m] {
            let delta = CsrDelta::from_dense(
                directed,
                node_ids.clone(),
                None,
                &src[batch.clone()],
                &dst[batch.clone()],
                &weight[batch],
            );
            graph = graph.apply_delta(&delta, Some(2));
        }
        let rebuilt = build_dense_csr(directed, node_ids, &src, &dst, &weight, Some(1));
        assert_bit_identical(&graph, &rebuilt);
    }

    /// Evicting the tail of the columns from a **spill-built base** lands
    /// bit-identically on the in-memory build of the surviving prefix —
    /// the removal arm is equally blind to how its input was constructed.
    #[test]
    fn apply_evict_on_spilled_base_matches_in_memory_rebuild(
        cols in dense_columns(),
        directed in 0u8..2,
        cut in 0usize..1000,
    ) {
        let (node_ids, src, dst, weight) = cols;
        let directed = directed == 1;
        let m = src.len();
        let keep = cut % (m + 1);
        let base = build_dense_csr_budgeted(
            directed,
            node_ids.clone(),
            &src,
            &dst,
            &weight,
            Some(2),
            Some(4),
            Some(0),
            None,
        )
        .expect("spilled base build");
        // Touched superset: every node — re-folding an unchanged row
        // reproduces its bits, so over-reporting is safe.
        let evict = CsrEvict::from_dense(
            directed,
            node_ids.clone(),
            None,
            node_ids.clone(),
            &src[..keep],
            &dst[..keep],
            &weight[..keep],
        );
        let evicted = base.apply_evict(&evict, Some(2));
        let rebuilt = build_dense_csr(
            directed,
            node_ids,
            &src[..keep],
            &dst[..keep],
            &weight[..keep],
            Some(1),
        );
        assert_bit_identical(&evicted, &rebuilt);
    }
}
