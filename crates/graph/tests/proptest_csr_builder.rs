//! Property tests for the columnar construction path: on arbitrary edge
//! lists with duplicates and self-loops, [`CsrBuilder`] must produce a
//! graph **identical** to `WeightedGraph::freeze()` — same dense node
//! table, same offsets/targets, bit-identical merged weights and cached
//! degrees — at 1, 2 and 4 build threads, seeded and unseeded.

use moby_graph::{CsrBuilder, CsrGraph, WeightedGraph};
use proptest::prelude::*;

/// Random edge list over a sparse id space; duplicates and `a == b`
/// self-loops occur naturally.
fn edge_list() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..30, 0u64..30, 0.25f64..8.0), 1..220).prop_map(|edges| {
        edges
            .into_iter()
            .map(|(a, b, w)| (a * 1_000 + 7, b * 1_000 + 7, w))
            .collect()
    })
}

/// Strict equality: the derived `PartialEq` plus bit-level comparison of
/// every weight column and cached degree (`==` would let `0.0 == -0.0`
/// slip through).
fn assert_bit_identical(built: &CsrGraph, frozen: &CsrGraph) {
    assert_eq!(built, frozen);
    assert_eq!(built.node_ids(), frozen.node_ids());
    assert_eq!(built.edge_count(), frozen.edge_count());
    assert_eq!(
        built.total_weight().to_bits(),
        frozen.total_weight().to_bits()
    );
    for u in 0..frozen.node_count() {
        let (bt, bw) = built.row(u);
        let (ft, fw) = frozen.row(u);
        assert_eq!(bt, ft, "row {u} targets");
        for (a, b) in bw.iter().zip(fw) {
            assert_eq!(a.to_bits(), b.to_bits(), "row {u} merged weight");
        }
        let (bit, biw) = built.in_row(u);
        let (fit, fiw) = frozen.in_row(u);
        assert_eq!(bit, fit, "in-row {u} targets");
        for (a, b) in biw.iter().zip(fiw) {
            assert_eq!(a.to_bits(), b.to_bits(), "in-row {u} merged weight");
        }
        assert_eq!(built.strength(u).to_bits(), frozen.strength(u).to_bits());
        assert_eq!(
            built.weighted_degree(u).to_bits(),
            frozen.weighted_degree(u).to_bits()
        );
        assert_eq!(built.self_loop(u).to_bits(), frozen.self_loop(u).to_bits());
    }
}

fn check(edges: &[(u64, u64, f64)], directed: bool, seeded: bool) {
    let mut g = if directed {
        WeightedGraph::new_directed()
    } else {
        WeightedGraph::new_undirected()
    };
    // Seeding mirrors how projections pre-add the full (sorted) node set so
    // isolated nodes stay visible.
    let mut seeds: Vec<u64> = Vec::new();
    if seeded {
        seeds = edges.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        seeds.push(999_999_999); // one isolated node
        seeds.sort_unstable();
        seeds.dedup();
        for &id in &seeds {
            g.add_node(id);
        }
    }
    for &(a, b, w) in edges {
        g.add_edge(a, b, w);
    }
    let frozen = g.freeze();
    for threads in [1usize, 2, 4] {
        let mut builder = if directed {
            CsrBuilder::directed()
        } else {
            CsrBuilder::undirected()
        }
        .threads(Some(threads));
        builder.seed_nodes(seeds.iter().copied());
        for &(a, b, w) in edges {
            builder.push(a, b, w);
        }
        assert_bit_identical(&builder.build(), &frozen);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn undirected_build_is_identical_to_freeze(edges in edge_list()) {
        check(&edges, false, false);
    }

    #[test]
    fn directed_build_is_identical_to_freeze(edges in edge_list()) {
        check(&edges, true, false);
    }

    #[test]
    fn seeded_build_is_identical_to_freeze(edges in edge_list(), directed in 0u8..2) {
        check(&edges, directed == 1, true);
    }
}
