//! Property tests: the frozen [`CsrGraph`] must agree with the builder
//! [`WeightedGraph`] it was frozen from on every structural invariant, for
//! arbitrary directed and undirected graphs including self-loops — and the
//! parallel PageRank sweeps must be bit-identical to the serial CSR path
//! at 1, 2 and 4 worker threads.

use moby_graph::metrics::{pagerank_csr, PageRankConfig};
use moby_graph::{CsrGraph, WeightedGraph};
use proptest::prelude::*;

/// Strategy producing a random edge list over a small id space; node ids
/// are sparse (multiplied out) to exercise the interning table, and
/// `a == b` self-loops occur naturally.
fn edge_list() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..30, 0u64..30, 0.25f64..8.0), 1..220).prop_map(|edges| {
        edges
            .into_iter()
            .map(|(a, b, w)| (a * 1_000 + 7, b * 1_000 + 7, w))
            .collect()
    })
}

/// A denser edge list whose CSR row space splits into several scheduler
/// chunks, so the parallel PageRank property exercises the chunked sweep
/// rather than collapsing to the inline single-chunk case.
fn dense_edge_list() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..60, 0u64..60, 0.25f64..8.0), 300..700)
}

fn build(directed: bool, edges: &[(u64, u64, f64)]) -> WeightedGraph {
    let mut g = if directed {
        WeightedGraph::new_directed()
    } else {
        WeightedGraph::new_undirected()
    };
    for &(a, b, w) in edges {
        g.add_edge(a, b, w);
    }
    g.add_node(999_999_999); // one isolated node to keep degree-0 covered
    g
}

/// The shared battery of agreement assertions.
fn assert_agreement(g: &WeightedGraph, c: &CsrGraph) {
    // Counts.
    assert_eq!(c.node_count(), g.node_count());
    assert_eq!(c.edge_count(), g.edge_count());
    assert!((c.total_weight() - g.total_weight()).abs() <= 1e-9 * g.total_weight().max(1.0));
    assert_eq!(c.is_directed(), g.is_directed());

    // Interning round-trips and per-node weighted degrees.
    for (u, &id) in g.node_ids().iter().enumerate() {
        assert_eq!(c.index_of(id), Some(u as u32));
        assert_eq!(c.id_of(u), Some(id));
        assert_eq!(c.degree(u), g.degree(u), "degree of {id}");
        let gs = g.strength(u);
        assert!(
            (c.strength(u) - gs).abs() <= 1e-9 * gs.abs().max(1.0),
            "strength of {id}: csr {} vs builder {gs}",
            c.strength(u)
        );
        let wd = gs + g.self_loop_weight(id);
        assert!(
            (c.weighted_degree(u) - wd).abs() <= 1e-9 * wd.abs().max(1.0),
            "weighted degree of {id}"
        );
        assert!((c.self_loop(u) - g.self_loop_weight(id)).abs() <= 1e-12);
    }

    // Edge multiset agreement (merged weights).
    let mut csr_edges: Vec<_> = c.edges().collect();
    let mut builder_edges = g.edges();
    let key = |e: &(u64, u64, f64)| (e.0, e.1);
    csr_edges.sort_by_key(key);
    builder_edges.sort_by_key(key);
    assert_eq!(csr_edges.len(), builder_edges.len());
    for (ce, be) in csr_edges.iter().zip(&builder_edges) {
        assert_eq!((ce.0, ce.1), (be.0, be.1));
        assert!((ce.2 - be.2).abs() <= 1e-9 * be.2.abs().max(1.0));
    }

    // Per-edge lookup agreement.
    for &(src, dst, _) in &builder_edges {
        let bw = g.edge_weight(src, dst).expect("edge listed");
        let cw = c.edge_weight(src, dst).expect("edge frozen");
        assert!((cw - bw).abs() <= 1e-9 * bw.abs().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn undirected_freeze_agrees_with_builder(edges in edge_list()) {
        let g = build(false, &edges);
        assert_agreement(&g, &g.freeze());
    }

    #[test]
    fn directed_freeze_agrees_with_builder(edges in edge_list()) {
        let g = build(true, &edges);
        let c = g.freeze();
        assert_agreement(&g, &c);
        // Directed extras: in-strength per node.
        for (u, _) in g.node_ids().iter().enumerate() {
            let gin = g.in_strength(u);
            let cin: f64 = c.in_neighbors(u).map(|(_, w)| w).sum();
            assert!((cin - gin).abs() <= 1e-9 * gin.abs().max(1.0));
        }
    }

    #[test]
    fn csr_undirected_projection_agrees_with_builder_projection(edges in edge_list()) {
        let g = build(true, &edges);
        let via_builder = g.to_undirected();
        let via_csr = g.freeze().to_undirected();
        assert_agreement(&via_builder, &via_csr);
    }

    #[test]
    fn parallel_pagerank_is_bit_identical_at_any_thread_count(
        edges in dense_edge_list(),
        directed in 0u8..2,
    ) {
        let g = build(directed == 1, &edges);
        let frozen = g.freeze();
        let serial = pagerank_csr(&frozen, &PageRankConfig {
            threads: Some(1),
            ..Default::default()
        });
        for t in [2usize, 4] {
            let parallel = pagerank_csr(&frozen, &PageRankConfig {
                threads: Some(t),
                ..Default::default()
            });
            prop_assert_eq!(parallel.len(), serial.len());
            for (id, r) in &serial {
                prop_assert_eq!(parallel[id].to_bits(), r.to_bits(),
                    "node {} diverged at {} threads", id, t);
            }
        }
    }
}
