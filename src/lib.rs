//! # moby-expansion
//!
//! A Rust reproduction of *"Graph-Based Optimisation of Network Expansion in
//! a Dockless Bike Sharing System"* (Roantree, Cuong, Murphy, Ngo —
//! ICDE 2024, arXiv:2404.01320).
//!
//! This facade crate re-exports the workspace members under short module
//! names so downstream users can depend on a single crate:
//!
//! * [`geo`] — Haversine distance, polygons, spatial indexes;
//! * [`data`] — trip schema, cleaning pipeline, synthetic Dublin generator;
//! * [`graph`] — property-graph store, weighted graphs, network metrics;
//! * [`cluster`] — constrained hierarchical agglomerative clustering;
//! * [`community`] — Louvain, label propagation, modularity, partition
//!   comparison;
//! * [`core`] — the paper's pipeline: candidate generation, station
//!   selection (Algorithm 1), temporal graphs and community validation;
//! * [`server`] — the snapshot-isolated serving layer: epoch-published
//!   frozen snapshots, a single writer applying live ingest/evict
//!   deltas, a std-only query worker pool and per-snapshot metric
//!   caches.
//!
//! ## Architecture: columnar build → freeze → apply_delta lifecycle
//!
//! The analytical core follows a **build → freeze → apply_delta** graph
//! lifecycle:
//!
//! 1. **Build (columnar).** Cleaning emits a struct-of-arrays
//!    [`data::trips::TripTable`] — dense `u32` station endpoints over one
//!    shared sorted intern table, weekday/hour keys, weights. Graph
//!    construction goes straight from those columns to a frozen graph via
//!    [`graph::CsrBuilder`] / [`graph::build_dense_csr`]: **sort-merge
//!    construction** (sort by row and target, merge adjacent duplicates
//!    in insertion order) expressed as fixed-chunk passes on the
//!    [`graph::par`] scheduler — zero per-edge hash operations, parallel
//!    yet bit-identical at any thread count. One pass over the trip
//!    table emits the edge lists for all three temporal granularities
//!    ([`core::temporal::build_all_from_trips`]).
//! 2. **Freeze.** The product is an immutable [`graph::CsrGraph`]:
//!    compressed sparse row adjacency (`offsets`/`targets`/`weights`,
//!    rows sorted by target), an interned dense `NodeId → u32` table, and
//!    cached per-node weighted degrees. Every hot algorithm — Louvain,
//!    label propagation, modularity, PageRank, centrality, clustering,
//!    components, path metrics — walks the frozen CSR rows; the `*_csr`
//!    entry points consume an already-frozen graph.
//! 3. **Apply deltas (streaming ingestion).** New trips arrive as a
//!    [`data::trips::TripBatch`];
//!    [`data::trips::TripTable::append_batch`] extends the sorted
//!    station-intern table in place (old endpoints shift through a
//!    monotone remap — they are never re-interned), and a
//!    [`graph::CsrDelta`] merges the batch into each existing frozen
//!    graph via [`graph::CsrGraph::apply_delta`] — untouched rows are
//!    copied, rows with batch entries continue the rebuild's weight fold
//!    from the stored merged weights. The result is **bit-identical to
//!    rebuilding from the concatenated table**, at any thread count (see
//!    [`graph::delta`] for why the fold-prefix argument makes this
//!    exact).
//!    [`core::reassign::SelectedNetwork::ingest_batch`] wires this
//!    through the pipeline state (trip table, frozen directed/undirected
//!    trip graphs, property store, Table III) and
//!    [`core::temporal::apply_batch_all`] advances `GBasic`/`GDay`/
//!    `GHour` from one pass over the batch — so a live deployment pays
//!    per batch for what the batch touches, not for a full rebuild. The
//!    differential suite (`crates/core/tests/proptest_delta.rs`) asserts
//!    the delta chain equals the one-shot rebuild bitwise at 1/2/4
//!    threads.
//!
//! **Which layer owns freezing:** the selected-network/temporal layer.
//! [`core::reassign::build_selected_network`] freezes the directed and
//! undirected trip graphs once from the trip table, and
//! [`core::temporal::build_all_from_trips`] freezes each granularity's
//! (possibly layered) graph once — detection, modularity scoring, station
//! folding and the per-community trip tables all read the same frozen
//! graphs; adjacency is never re-derived downstream.
//!
//! The legacy mutable builder, [`graph::WeightedGraph`] (per-node
//! hash-map adjacency, `freeze()` to CSR), survives **off the hot path**
//! as the compatibility and equivalence baseline: `CsrBuilder` output is
//! bit-identical to `WeightedGraph::freeze()` by construction, proptests
//! enforce it at 1/2/4 build threads, the synthetic-dataset suite proves
//! the columnar pipeline reproduces the legacy store-projection pipeline
//! partition-for-partition, and the benches
//! (`crates/bench/benches/csr.rs`, the `bench_smoke` construction bench)
//! keep measuring what the columnar path buys. See `DESIGN.md` for the
//! construction pipeline's internals.
//!
//! ## Parallelism: the deterministic execution layer
//!
//! Hot CSR sweeps run on the shared scheduler in [`graph::par`]:
//! contiguous row chunks balanced by edge count, executed on scoped `std`
//! threads, with every reduction merged in fixed chunk order. The
//! determinism contract is strict — **results are bit-identical at any
//! thread count**, because chunk boundaries depend only on the graph (never
//! on the thread count) and the serial path is simply the 1-thread
//! specialisation of the parallel one. PageRank runs pull-based power
//! iterations on a persistent worker pool ([`graph::par::par_iterate`]);
//! Louvain and label propagation precompute move/label decisions in
//! parallel and commit them serially with staleness checks, so the
//! committed sequence is exactly the serial one; modularity and the
//! freeze-time degree caches accumulate per chunk and merge in chunk
//! order; betweenness/closeness chunk their per-source trees.
//!
//! The worker count comes from the `threads` field on the algorithm
//! configs ([`community::LouvainConfig`], [`graph::metrics::PageRankConfig`],
//! [`core::detect::DetectConfig`], …), falling back to the `MOBY_THREADS`
//! environment variable and then the machine's parallelism — so `MOBY_THREADS=8`
//! speeds a pipeline up without touching any result, and `MOBY_THREADS=1`
//! reproduces the serial path exactly.
//!
//! ## Quick start
//!
//! ```
//! use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
//! use moby_expansion::data::synth::{generate, SynthConfig};
//!
//! // Generate a small synthetic Moby-like dataset and expand the network.
//! let raw = generate(&SynthConfig::small_test());
//! let outcome = ExpansionPipeline::new(PipelineConfig::default())
//!     .run(&raw)
//!     .expect("pipeline runs on the synthetic dataset");
//!
//! println!(
//!     "selected {} new stations on top of {} existing ones",
//!     outcome.new_station_count(),
//!     outcome.dataset.stations.len(),
//! );
//! assert!(outcome.communities.basic.modularity > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use moby_cluster as cluster;
pub use moby_community as community;
pub use moby_core as core;
pub use moby_data as data;
pub use moby_geo as geo;
pub use moby_graph as graph;
pub use moby_server as server;

/// The crate version, taken from the workspace manifest.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_populated() {
        assert!(!super::VERSION.is_empty());
    }
}
