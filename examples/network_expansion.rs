//! Network-expansion planning: where should the operator erect new fixed
//! stations, and how strong is the case for each one?
//!
//! This example mirrors the operator-facing use-case in the paper's
//! introduction: run the candidate-generation + selection steps, rank the
//! proposed stations, and export the selected network as GeoJSON so it can
//! be dropped onto a map.
//!
//! ```text
//! cargo run --release --example network_expansion
//! ```

use moby_expansion::core::candidate::build_candidate_network;
use moby_expansion::core::report::{edge_weight_percentile, network_geojson};
use moby_expansion::core::selection::select_stations;
use moby_expansion::core::ExpansionConfig;
use moby_expansion::data::clean::clean_dataset;
use moby_expansion::data::synth::{generate, SynthConfig};
use std::collections::HashMap;

fn main() {
    let raw = generate(&SynthConfig::small_test());
    let cleaned = clean_dataset(&raw);
    println!(
        "cleaned dataset: {} rentals over {} locations and {} stations",
        cleaned.dataset.rentals.len(),
        cleaned.dataset.locations.len(),
        cleaned.dataset.stations.len()
    );

    let config = ExpansionConfig::default();
    let network =
        build_candidate_network(&cleaned.dataset, &config).expect("candidate network builds");
    println!(
        "candidate graph: {} nodes ({} fixed + {} candidates), {} directed edges",
        network.nodes.len(),
        network.fixed_ids().len(),
        network.candidate_ids().len(),
        network.summary.directed_edges
    );

    let selection = select_stations(&network, &config).expect("selection runs");
    println!(
        "degree threshold (min fixed-station degree): {}",
        selection.degree_threshold
    );
    println!("top 10 proposed stations by connectivity:");
    println!(
        "{:<6} {:>12} {:>8} {:>18}",
        "rank", "candidate id", "degree", "nearest fixed (m)"
    );
    for s in selection.selected.iter().take(10) {
        println!(
            "{:<6} {:>12} {:>8} {:>18.0}",
            s.rank, s.id, s.degree, s.nearest_fixed_m
        );
    }
    let reasons = selection.rejections_by_reason();
    println!("\nrejections by reason: {reasons:?}");

    // Export the candidate graph in the style of Fig. 1 (all nodes, heavy
    // edges only) for inspection in any GeoJSON viewer.
    let positions = network.positions();
    let names: HashMap<_, _> = network
        .nodes
        .iter()
        .map(|n| (n.id, n.name.clone()))
        .collect();
    let fixed_ids = network.fixed_ids();
    // The candidate graph stays on the builder representation; freeze once
    // for the frozen-graph report API.
    let candidate_csr = network.undirected.freeze();
    let threshold = edge_weight_percentile(&candidate_csr, 99.0);
    let geojson = network_geojson(
        &candidate_csr,
        &positions,
        &names,
        &|id| fixed_ids.contains(&id),
        None,
        threshold,
    );
    println!(
        "\nGeoJSON export of the candidate graph (top-1% edges): {} bytes",
        geojson.len()
    );
    println!("first 200 chars: {}", &geojson[..geojson.len().min(200)]);
}
