//! Fleet-rebalancing planner: turn the community analysis into the concrete
//! operational recommendation the paper closes §V-B with — "bikes could be
//! moved from Communities 2, 4, and 6 to Communities 1, 3, and 7 each Friday
//! night to prepare for the shift in demand over the weekend".
//!
//! For every GDay community the example computes the weekday/weekend demand
//! imbalance and the net in/out flow, then prints a Friday-night transfer
//! plan between bike-surplus and bike-deficit communities.
//!
//! ```text
//! cargo run --release --example rebalancing_planner
//! ```

use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_expansion::core::report::daily_profile;
use moby_expansion::data::synth::{generate, SynthConfig};

struct CommunityDemand {
    community: usize,
    stations: usize,
    weekday_share: f64,
    weekend_share: f64,
    net_inflow: f64,
}

fn main() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    let day_detection = &outcome.communities.day;
    let daily = daily_profile(&outcome.selected.store, &day_detection.station_partition);

    let mut demands: Vec<CommunityDemand> = Vec::new();
    for row in &day_detection.table.rows {
        let shares = daily.get(&row.community).copied().unwrap_or([0.0; 7]);
        let weekend: f64 = shares[5] + shares[6];
        demands.push(CommunityDemand {
            community: row.community,
            stations: row.total_stations(),
            weekday_share: 1.0 - weekend,
            weekend_share: weekend,
            net_inflow: row.incoming - row.out,
        });
    }

    println!("GDay community demand profile:");
    println!(
        "{:<10} {:>9} {:>15} {:>15} {:>12}",
        "community", "stations", "weekday share", "weekend share", "net inflow"
    );
    for d in &demands {
        println!(
            "{:<10} {:>9} {:>14.1}% {:>14.1}% {:>12.0}",
            d.community + 1,
            d.stations,
            d.weekday_share * 100.0,
            d.weekend_share * 100.0,
            d.net_inflow
        );
    }

    // Friday-night plan: communities whose demand leans to weekdays release
    // bikes; weekend-leaning communities receive them, proportionally to how
    // strongly they lean.
    let uniform_weekend = 2.0 / 7.0;
    let mut donors: Vec<&CommunityDemand> = demands
        .iter()
        .filter(|d| d.weekend_share < uniform_weekend * 0.9)
        .collect();
    let mut receivers: Vec<&CommunityDemand> = demands
        .iter()
        .filter(|d| d.weekend_share > uniform_weekend * 1.1)
        .collect();
    donors.sort_by(|a, b| {
        a.weekend_share
            .partial_cmp(&b.weekend_share)
            .expect("finite")
    });
    receivers.sort_by(|a, b| {
        b.weekend_share
            .partial_cmp(&a.weekend_share)
            .expect("finite")
    });

    println!("\nFriday-night rebalancing plan (move bikes before the weekend):");
    if donors.is_empty() || receivers.is_empty() {
        println!("  demand is balanced across communities; no transfers needed");
        return;
    }
    for (donor, receiver) in donors.iter().zip(receivers.iter()) {
        // Scale the suggested volume by how many stations the receiver has.
        let bikes = (receiver.stations as f64 * 0.5).ceil() as usize;
        println!(
            "  move ~{bikes:>3} bikes from community {} (weekend share {:.0}%) to community {} (weekend share {:.0}%)",
            donor.community + 1,
            donor.weekend_share * 100.0,
            receiver.community + 1,
            receiver.weekend_share * 100.0
        );
    }
    println!(
        "\n(based on {} trips across {} stations in {} GDay communities)",
        outcome.selected.table.total_trips,
        outcome.total_station_count(),
        day_detection.community_count()
    );
}
