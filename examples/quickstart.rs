//! Quickstart: run the full expansion pipeline on a synthetic dataset and
//! print the headline numbers of every table the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_expansion::core::report;
use moby_expansion::core::validate::validate_default;
use moby_expansion::data::synth::{generate, SynthConfig};

fn main() {
    // A reduced-scale dataset keeps the example fast; swap in
    // `SynthConfig::paper_scale()` to reproduce the full-size run.
    let config = SynthConfig::small_test();
    println!(
        "generating synthetic Moby dataset (seed {}) ...",
        config.seed
    );
    let raw = generate(&config);

    let pipeline = ExpansionPipeline::new(PipelineConfig::default());
    let outcome = pipeline.run(&raw).expect("pipeline should run");

    println!("\n{}", report::render_table1(&outcome.overview));
    println!("{}", report::render_table2(&outcome.candidate.summary));
    println!("{}", report::render_table3(&outcome.selected.table));
    println!(
        "{}",
        report::render_community_table("GBasic (Table IV)", &outcome.communities.basic.table)
    );
    println!(
        "{}",
        report::render_community_table("GDay (Table V)", &outcome.communities.day.table)
    );
    println!(
        "{}",
        report::render_community_table("GHour (Table VI)", &outcome.communities.hour.table)
    );

    let validation = validate_default(&outcome);
    println!("validation: {validation:#?}");
    println!(
        "\nexpanded the network from {} to {} stations ({} new)",
        outcome.dataset.stations.len(),
        outcome.total_station_count(),
        outcome.new_station_count()
    );
}
