//! Temporal community analysis: detect communities at the three temporal
//! granularities and print the day-of-week / hour-of-day usage profiles the
//! paper uses to distinguish commuter from leisure communities
//! (Figs. 5 and 7).
//!
//! ```text
//! cargo run --release --example temporal_communities
//! ```

use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_expansion::core::report::{
    daily_profile, hourly_profile, profile_csv, render_community_table,
};
use moby_expansion::data::synth::{generate, SynthConfig};
use moby_expansion::data::timeparse::Weekday;

fn main() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    for (name, detection) in [
        ("GBasic", &outcome.communities.basic),
        ("GDay", &outcome.communities.day),
        ("GHour", &outcome.communities.hour),
    ] {
        println!("{}", render_community_table(name, &detection.table));
    }

    // Fig. 5 — daily travel patterns per GDay community.
    let day_labels: Vec<&str> = Weekday::ALL.iter().map(|d| d.abbrev()).collect();
    let daily = daily_profile(
        &outcome.selected.store,
        &outcome.communities.day.station_partition,
    );
    println!("Daily travel pattern per GDay community (share of trips):");
    println!("{}", profile_csv(&daily, &day_labels));

    // Classify each community as commuter- or weekend-leaning, the reading
    // the paper gives of Fig. 5.
    for (community, shares) in &daily {
        let weekend: f64 = shares[5] + shares[6];
        let leaning = if weekend > 2.0 / 7.0 {
            "weekend/leisure-leaning"
        } else {
            "weekday/commuter-leaning"
        };
        println!(
            "community {:>2}: weekend share {:>5.1}% -> {leaning}",
            community + 1,
            weekend * 100.0
        );
    }

    // Fig. 7 — hourly travel patterns per GHour community.
    let hour_labels: Vec<String> = (0..24).map(|h| format!("h{h:02}")).collect();
    let hour_label_refs: Vec<&str> = hour_labels.iter().map(|s| s.as_str()).collect();
    let hourly = hourly_profile(
        &outcome.selected.store,
        &outcome.communities.hour.station_partition,
    );
    println!("\nHourly travel pattern per GHour community (share of trips):");
    println!("{}", profile_csv(&hourly, &hour_label_refs));

    for (community, shares) in &hourly {
        let peak_hour = shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(h, _)| h)
            .unwrap_or(0);
        let am_peak: f64 = shares[7..10].iter().sum();
        let midday: f64 = shares[11..15].iter().sum();
        let profile = if am_peak > midday {
            "commuter (AM peak)"
        } else {
            "leisure (midday peak)"
        };
        println!(
            "community {:>2}: peak hour {peak_hour:02}:00 -> {profile}",
            community + 1
        );
    }
}
